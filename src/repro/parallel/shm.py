"""Zero-pickle shared-memory work distribution for the parallel engines.

The chunked sweep executor (:mod:`repro.parallel.executor`) originally
shipped every :class:`~repro.parallel.tasks.ChunkTask` with a fully
pickled copy of the sweep's *shared immutable state* -- the experiment
settings, the algorithm specs, and the per-trial seed sequences -- even
though every chunk of a data point carries exactly the same copy.  At
Figure-3 scale (1,000 trials, 64 chunks) that is ~2 KB of redundant pickle
per task, and lifecycle sweeps that multiply trial counts pay dispatch
cost before they pay solve cost.

This module serialises the shared state **once** per sweep into a named
:mod:`multiprocessing.shared_memory` segment and shrinks every task
payload to a :class:`ShmTask` -- ``(segment name, task index)``, ~60 bytes
of pickle.  Workers attach on first use, reconstruct **read-only** NumPy
views over the segment (never copies), and rebuild everything else --
algorithms, RNG streams -- locally, exactly like the classic path.

Segment layout::

    [u64 manifest length][pickled ShmManifest][payload]
     payload = 64-byte-aligned typed buffers ... followed by the blob

The manifest is typed -- dtype/shape/offset/nbytes per buffer -- and
carries a SHA-256 ``digest`` of the payload region; :func:`attach`
refuses segments whose content does not hash to the manifest's digest,
and raises a clear :class:`~repro.util.errors.ValidationError` when the
segment was already unlinked.  The *blob* is a single pickle of the
sweep's non-array constants (settings, algorithm specs, seed metadata),
written once per sweep rather than once per task.

Lifecycle contract (leak-free by construction)
----------------------------------------------
* The publishing process **owns** the segment: it is registered in a
  module registry (:func:`active_segments`), unlinked by
  :meth:`SharedState.unlink` in the caller's ``finally`` block, and -- as
  a backstop -- by an ``atexit`` hook.  Creation stays registered with
  the :mod:`multiprocessing.resource_tracker`, so even a hard-crashed
  owner gets its segments reaped by the tracker.
* Workers attach *untracked* (the attach-side resource-tracker
  registration is explicitly withdrawn), so a worker exiting -- or being
  killed -- can neither leak a registration nor unlink a segment that the
  owner and its siblings still use.
* Attachments are cached per process (LRU, pid-guarded) so a worker
  decodes each sweep's state once, not once per chunk; eviction tolerates
  live views (the mapping stays valid until the last view dies, while the
  *name* is released by the owner's unlink).

The :class:`~repro.kernels.arena.MatrixArena` ``__reduce__``-raises
contract is honoured on the attach side: shared state crosses the process
boundary only as read-only views plus value-like metadata; arenas (and
every other mutable scratch structure) remain strictly process-local and
are rebuilt by the worker.

Switch: ``REPRO_SHM=0`` disables the layer (tasks fall back to the
classic fully-pickled payloads); the numbers are bit-identical either way
-- the differential suite proves it at 1/2/4 workers under both settings.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import pickle
import secrets
import struct
from collections import OrderedDict
from dataclasses import dataclass, replace
from multiprocessing import resource_tracker, shared_memory
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

import numpy as np

from repro.util.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.experiments.runner import AggregateStats
    from repro.netmodel.graph import MECNetwork

#: Environment variable switching the layer off (``0``) or on (``1``, default).
SHM_ENV = "REPRO_SHM"

#: Prefix of every segment name this module creates (leak scans key on it).
SEGMENT_PREFIX = "rshm"

#: Regression budget for one pickled :class:`ShmTask` (bytes).  The whole
#: point of the layer is that task payloads are constant-size and tiny; a
#: change that makes them grow past this budget defeats it.
SHM_TASK_BYTE_BUDGET = 96

_ALIGN = 64
_HEADER = struct.Struct("<Q")
_PROTOCOL = pickle.HIGHEST_PROTOCOL


def shm_enabled() -> bool:
    """Whether zero-pickle distribution is on (``REPRO_SHM``, default on)."""
    raw = os.environ.get(SHM_ENV)
    if raw is None or raw == "" or raw == "1":
        return True
    if raw == "0":
        return False
    raise ValidationError(f"{SHM_ENV} must be 0 or 1, got {raw!r}")


# -- manifest ---------------------------------------------------------------------


@dataclass(frozen=True)
class BufferSpec:
    """One typed buffer inside a segment's payload region."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int  # payload-relative, 64-byte aligned
    nbytes: int


@dataclass(frozen=True)
class ShmManifest:
    """What a segment contains and how to check it.

    ``digest`` is the SHA-256 hex digest of the whole payload region
    (buffers, padding, and blob); :func:`attach` recomputes and compares
    it before handing out any view.
    """

    segment: str
    buffers: tuple[BufferSpec, ...]
    blob_offset: int
    blob_nbytes: int
    payload_nbytes: int
    digest: str


# -- owner side -------------------------------------------------------------------

#: Segments created (and not yet unlinked) by this process, keyed by name.
_OWNED: dict[str, "SharedState"] = {}


class SharedState:
    """Owner handle of one published segment (unlink exactly once)."""

    __slots__ = ("manifest", "_shm", "_closed")

    def __init__(self, shm: shared_memory.SharedMemory, manifest: ShmManifest):
        self._shm = shm
        self.manifest = manifest
        self._closed = False

    @property
    def name(self) -> str:
        """The segment name tasks carry (the whole per-task payload key)."""
        return self.manifest.segment

    def unlink(self) -> None:
        """Release the segment's name and the owner's mapping (idempotent).

        Evicts any same-process attachment first so the inline-fallback
        path never holds a stale handle to an unlinked segment.
        """
        if self._closed:
            return
        self._closed = True
        _OWNED.pop(self.name, None)
        _evict_attachment(self.name)
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - live external views
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already reaped
            pass

    def __enter__(self) -> "SharedState":
        return self

    def __exit__(self, *exc: object) -> None:
        self.unlink()


def active_segments() -> list[str]:
    """Names of segments this process published and has not yet unlinked."""
    return sorted(_OWNED)


def shutdown_shared_state() -> None:
    """Unlink every segment this process still owns (atexit backstop)."""
    for state in list(_OWNED.values()):
        state.unlink()


atexit.register(shutdown_shared_state)


def publish(arrays: Mapping[str, np.ndarray], blob: bytes = b"") -> SharedState:
    """Write ``arrays`` + ``blob`` into one named segment, manifest first.

    Arrays are copied in C-contiguously at 64-byte-aligned offsets; the
    blob (one pickle of the non-array constants) follows them.  Returns
    the owner handle; the caller must :meth:`SharedState.unlink` it (use
    ``try/finally`` or the context manager) when the sweep is done.
    """
    specs: list[BufferSpec] = []
    prepared: list[np.ndarray] = []
    offset = 0
    for name, array in arrays.items():
        arr = np.ascontiguousarray(array)
        offset = -(-offset // _ALIGN) * _ALIGN
        specs.append(
            BufferSpec(
                name=str(name),
                dtype=str(arr.dtype),
                shape=tuple(arr.shape),
                offset=offset,
                nbytes=arr.nbytes,
            )
        )
        prepared.append(arr)
        offset += arr.nbytes
    blob_offset = -(-offset // _ALIGN) * _ALIGN
    payload_nbytes = blob_offset + len(blob)

    # The manifest rides at the head of the segment, so its pickled size
    # must be known before offsets are final: pickle once with a
    # placeholder digest (same 64-char length as the real hex digest),
    # then re-pickle with the real digest -- byte length cannot change.
    manifest = ShmManifest(
        segment="",
        buffers=tuple(specs),
        blob_offset=blob_offset,
        blob_nbytes=len(blob),
        payload_nbytes=payload_nbytes,
        digest="0" * 64,
    )

    while True:
        name = SEGMENT_PREFIX + secrets.token_hex(4)
        sized = replace(manifest, segment=name)
        header = pickle.dumps(sized, protocol=_PROTOCOL)
        total = _HEADER.size + len(header) + payload_nbytes
        try:
            shm = shared_memory.SharedMemory(create=True, size=max(total, 1), name=name)
        except FileExistsError:  # pragma: no cover - 32-bit token collision
            continue
        break

    payload_offset = _HEADER.size + len(header)
    buf = shm.buf
    for spec, arr in zip(specs, prepared):
        if spec.nbytes:
            start = payload_offset + spec.offset
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=buf, offset=start)
            view[...] = arr
            del view  # release the exported pointer before any close()
    if blob:
        start = payload_offset + blob_offset
        buf[start : start + len(blob)] = blob
    digest = hashlib.sha256(
        buf[payload_offset : payload_offset + payload_nbytes]
    ).hexdigest()
    final = replace(sized, digest=digest)
    header = pickle.dumps(final, protocol=_PROTOCOL)
    assert _HEADER.size + len(header) + payload_nbytes == total
    buf[: _HEADER.size] = _HEADER.pack(len(header))
    buf[_HEADER.size : payload_offset] = header

    state = SharedState(shm, final)
    _OWNED[state.name] = state
    return state


# -- attach side ------------------------------------------------------------------


class Attachment:
    """A worker's handle on one segment: read-only views plus the blob.

    ``context`` caches whatever the consumer decodes from the blob
    (settings, specs, seed metadata), so a worker pays the decode once
    per sweep rather than once per chunk.
    """

    __slots__ = ("segment", "manifest", "arrays", "blob", "context", "_shm")

    def __init__(
        self,
        segment: str,
        manifest: ShmManifest,
        arrays: dict[str, np.ndarray],
        blob: bytes,
        shm: shared_memory.SharedMemory,
    ):
        self.segment = segment
        self.manifest = manifest
        self.arrays = arrays
        self.blob = blob
        self.context: object | None = None
        self._shm = shm

    def close(self) -> None:
        """Drop the mapping if no view escaped; harmless either way.

        A mapping with live exported views cannot be closed (Python
        raises :class:`BufferError`); the views keep the memory valid and
        the *name* is released by the owner's unlink, so tolerating the
        error cannot leak a named segment.
        """
        self.arrays = {}
        self.context = None
        try:
            self._shm.close()
        except BufferError:
            pass


def _open_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to ``name`` without a resource-tracker registration.

    Pre-3.13 ``SharedMemory(name=...)`` registers even pure attachments
    with the resource tracker.  The tracker process is shared by the whole
    process tree and keys on the segment *name*, so attach-side
    registrations (a) collide with the owner's create-side one -- a worker
    exiting would unlink a segment its siblings still use -- and
    (b) cannot be withdrawn symmetrically when several workers attach the
    same segment.  The fix is to not send the registration at all: the
    register call is swapped for a no-op for the duration of the open.
    The owner's create-side registration is untouched, so a hard-crashed
    publisher still gets its segments reaped by the tracker.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def attach(name: str) -> Attachment:
    """Attach to segment ``name``, verify its manifest, build read-only views.

    Raises :class:`ValidationError` when the segment is gone (unlinked or
    never published), when its header cannot be parsed, or when the
    payload's SHA-256 does not match the manifest digest.
    """
    try:
        shm = _open_untracked(name)
    except FileNotFoundError:
        raise ValidationError(
            f"shared-memory segment {name!r} does not exist -- it was never "
            "published or has already been unlinked by its owner"
        ) from None
    try:
        buf = shm.buf
        if shm.size < _HEADER.size:
            raise ValidationError(f"segment {name!r} is too small to hold a manifest")
        (header_len,) = _HEADER.unpack(bytes(buf[: _HEADER.size]))
        if header_len <= 0 or _HEADER.size + header_len > shm.size:
            raise ValidationError(f"segment {name!r} has a corrupt manifest header")
        try:
            manifest = pickle.loads(bytes(buf[_HEADER.size : _HEADER.size + header_len]))
        except Exception:
            raise ValidationError(f"segment {name!r} manifest does not unpickle") from None
        if not isinstance(manifest, ShmManifest):
            raise ValidationError(f"segment {name!r} header is not a ShmManifest")
        if manifest.segment != name:
            raise ValidationError(
                f"segment {name!r} carries a manifest for {manifest.segment!r}"
            )
        payload_offset = _HEADER.size + header_len
        if payload_offset + manifest.payload_nbytes > shm.size:
            raise ValidationError(f"segment {name!r} payload exceeds the segment")
        digest = hashlib.sha256(
            buf[payload_offset : payload_offset + manifest.payload_nbytes]
        ).hexdigest()
        if digest != manifest.digest:
            raise ValidationError(
                f"segment {name!r} content hash mismatch "
                f"(manifest {manifest.digest[:12]}..., payload {digest[:12]}...) "
                "-- refusing to attach"
            )
        arrays: dict[str, np.ndarray] = {}
        for spec in manifest.buffers:
            view = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=buf,
                offset=payload_offset + spec.offset,
            )
            view.flags.writeable = False
            arrays[spec.name] = view
        start = payload_offset + manifest.blob_offset
        blob = bytes(buf[start : start + manifest.blob_nbytes])
    except Exception:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - partial view escape
            pass
        raise
    return Attachment(name, manifest, arrays, blob, shm)


#: Per-process attachment cache: a worker decodes each sweep once.  Small
#: LRU so long-lived pooled workers do not accumulate mappings of every
#: sweep they ever served.
_CACHE_MAX = 8
_ATTACHED: "OrderedDict[str, Attachment]" = OrderedDict()
_ATTACH_PID: int | None = None


def attach_cached(name: str) -> Attachment:
    """The process-local cached attachment of ``name`` (LRU, pid-guarded)."""
    global _ATTACH_PID
    pid = os.getpid()
    if _ATTACH_PID != pid:
        # Forked children inherit the parent's cache dict; their handles
        # are valid mappings but the bookkeeping must restart.
        _ATTACHED.clear()
        _ATTACH_PID = pid
    cached = _ATTACHED.get(name)
    if cached is not None:
        _ATTACHED.move_to_end(name)
        return cached
    attachment = attach(name)
    _ATTACHED[name] = attachment
    while len(_ATTACHED) > _CACHE_MAX:
        _, evicted = _ATTACHED.popitem(last=False)
        evicted.close()
    return attachment


def _evict_attachment(name: str) -> None:
    attachment = _ATTACHED.pop(name, None)
    if attachment is not None:
        attachment.close()


def context_for(name: str, kind: str, build: Callable[[dict, Mapping[str, np.ndarray]], object]) -> object:
    """The decoded per-sweep context of segment ``name`` (cached).

    ``build(meta, arrays)`` runs once per process per segment; ``meta`` is
    the unpickled blob dict, whose ``"kind"`` must equal ``kind`` (a
    segment published for one engine cannot be executed by another).
    """
    attachment = attach_cached(name)
    if attachment.context is None:
        meta = pickle.loads(attachment.blob)
        if not isinstance(meta, dict) or meta.get("kind") != kind:
            raise ValidationError(
                f"segment {name!r} holds {meta.get('kind') if isinstance(meta, dict) else type(meta).__name__!r} "
                f"state, not {kind!r}"
            )
        attachment.context = build(meta, attachment.arrays)
    return attachment.context


def publish_payload(kind: str, arrays: Mapping[str, np.ndarray], meta: dict) -> SharedState:
    """Publish one engine's shared state: typed ``arrays`` + pickled ``meta``."""
    blob = pickle.dumps({"kind": kind, **meta}, protocol=_PROTOCOL)
    return publish(arrays, blob)


# -- compact task -----------------------------------------------------------------


class ShmTask:
    """The whole per-task payload: ``(segment name, task index)``.

    Shared by every zero-pickle engine (sweep chunks, stream ensembles,
    service replay replicas); what the index *means* is defined by the
    segment's blob.  ``__reduce__`` keeps the pickle positional (no field
    names), so a task serialises to ~60 bytes regardless of sweep size --
    the regression budget is :data:`SHM_TASK_BYTE_BUDGET`.
    """

    __slots__ = ("segment", "index")

    def __init__(self, segment: str, index: int):
        self.segment = segment
        self.index = index

    def __reduce__(self):
        return (ShmTask, (self.segment, self.index))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ShmTask)
            and other.segment == self.segment
            and other.index == self.index
        )

    def __hash__(self) -> int:
        return hash((self.segment, self.index))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ShmTask({self.segment!r}, {self.index})"


# -- seed codec -------------------------------------------------------------------


@dataclass(frozen=True)
class SeedBlock:
    """How to rebuild the sweep's per-trial seed sequences from shm.

    ``spawned`` -- the common case (:func:`repro.util.rng.spawn_seed_sequences`
    on a seeded generator): every child shares the root entropy and pool
    size and differs only in the last spawn-key word, which lives in the
    ``seed_keys`` int64 buffer.  ``entropy`` -- children built from fresh
    integer entropy (the exotic-bit-generator fallback): the ``seed_entropy``
    uint64 buffer holds one word per trial.  ``pickled`` -- anything else
    rides the blob verbatim (still once per sweep, never once per task).
    """

    kind: str
    count: int
    entropy: object = None
    prefix: tuple = ()
    pool_size: int = 4
    seeds: tuple = ()


def _entropy_value(seq: np.random.SeedSequence) -> object:
    entropy = seq.entropy
    if isinstance(entropy, (list, np.ndarray)):
        return tuple(int(e) for e in entropy)
    return entropy


def encode_seed_sequences(
    seeds: Sequence[np.random.SeedSequence],
) -> tuple[SeedBlock, dict[str, np.ndarray]]:
    """Split ``seeds`` into a constant-size :class:`SeedBlock` + typed buffers."""
    seeds = list(seeds)
    count = len(seeds)
    if count and all(type(s) is np.random.SeedSequence for s in seeds):
        first = seeds[0]
        entropy = _entropy_value(first)
        pool = first.pool_size
        key = tuple(first.spawn_key)
        if key and all(
            tuple(s.spawn_key)[:-1] == key[:-1]
            and len(s.spawn_key) == len(key)
            and 0 <= s.spawn_key[-1] < 2**63
            and s.pool_size == pool
            and _entropy_value(s) == entropy
            for s in seeds
        ):
            block = SeedBlock(
                "spawned", count, entropy=entropy, prefix=key[:-1], pool_size=pool
            )
            keys = np.fromiter(
                (s.spawn_key[-1] for s in seeds), dtype=np.int64, count=count
            )
            return block, {"seed_keys": keys}
        if all(
            not s.spawn_key
            and isinstance(_entropy_value(s), int)
            and 0 <= _entropy_value(s) < 2**64
            and s.pool_size == pool
            for s in seeds
        ):
            block = SeedBlock("entropy", count, pool_size=pool)
            words = np.fromiter(
                (_entropy_value(s) for s in seeds), dtype=np.uint64, count=count
            )
            return block, {"seed_entropy": words}
    return SeedBlock("pickled", count, seeds=tuple(seeds)), {}


def seed_sequence_at(
    block: SeedBlock, arrays: Mapping[str, np.ndarray], index: int
) -> np.random.SeedSequence:
    """Rebuild trial ``index``'s seed sequence, bit-identical to the original."""
    if not (0 <= index < block.count):
        raise ValidationError(f"seed index {index} out of range [0, {block.count})")
    if block.kind == "spawned":
        key = block.prefix + (int(arrays["seed_keys"][index]),)
        return np.random.SeedSequence(
            entropy=block.entropy, spawn_key=key, pool_size=block.pool_size
        )
    if block.kind == "entropy":
        return np.random.SeedSequence(
            entropy=int(arrays["seed_entropy"][index]), pool_size=block.pool_size
        )
    return block.seeds[index]


# -- network sharing --------------------------------------------------------------


def network_arrays(network: "MECNetwork") -> dict[str, np.ndarray]:
    """A shared network as typed buffers: CSR adjacency + capacity table.

    ``net_indptr``/``net_indices`` are the CSR neighborhoods of
    :mod:`repro.kernels.csr`; ``net_order`` maps dense indices back to
    node ids; ``net_capacity`` is the per-node cloudlet capacity (0 for
    plain APs).  Workers rebuild the graph from these views and adopt the
    shared CSR into the kernel caches (:func:`network_from_arrays`), so a
    worker-side BFS runs over the very same buffers the owner published.
    """
    from repro.kernels.csr import csr_adjacency

    csr = csr_adjacency(network.graph)
    try:
        order = np.fromiter((int(v) for v in csr.order), dtype=np.int64, count=len(csr.order))
    except (TypeError, ValueError):
        raise ValidationError(
            "only integer node ids can cross the shared-memory boundary"
        ) from None
    capacity = np.fromiter(
        (network.capacity(v) for v in csr.order), dtype=np.float64, count=len(csr.order)
    )
    return {
        "net_indptr": np.asarray(csr.indptr, dtype=np.int64),
        "net_indices": np.asarray(csr.indices, dtype=np.int64),
        "net_order": order,
        "net_capacity": capacity,
    }


def network_from_arrays(arrays: Mapping[str, np.ndarray]) -> "MECNetwork":
    """Rebuild a :class:`MECNetwork` from :func:`network_arrays` buffers.

    The graph's node and per-node adjacency insertion order reproduce the
    CSR order, so topology generators that insert edges in CSR-compatible
    order (all of :mod:`repro.topology`) round-trip to a graph whose
    iteration behaviour -- and therefore every downstream draw -- is
    identical to the original's.  The attached CSR views themselves are
    adopted into the kernel caches (read-only, zero-copy): worker-side
    neighborhood BFS runs directly over the shared buffers.
    """
    import networkx as nx

    from repro.kernels.csr import CSRAdjacency, adopt_csr
    from repro.netmodel.graph import MECNetwork

    indptr = np.asarray(arrays["net_indptr"], dtype=np.intp)
    indices = np.asarray(arrays["net_indices"], dtype=np.intp)
    order = [int(v) for v in arrays["net_order"]]
    capacity = arrays["net_capacity"]
    graph = nx.Graph()
    graph.add_nodes_from(order)
    for u in range(len(order)):
        uu = order[u]
        for w in indices[indptr[u] : indptr[u + 1]]:
            graph.add_edge(uu, order[w])
    network = MECNetwork(
        graph,
        {order[i]: float(capacity[i]) for i in range(len(order)) if capacity[i] > 0},
    )
    # MECNetwork froze a *copy* of the graph; hand that copy the shared
    # read-only CSR so its neighborhood kernels never rebuild the arrays.
    adopt_csr(
        network.graph, CSRAdjacency.from_arrays(indptr, indices, order=order)
    )
    return network


# -- the sweep engine (run_point) -------------------------------------------------


class _SweepContext:
    """Worker-side decoded state of one ``run_point`` sweep."""

    __slots__ = (
        "settings",
        "specs",
        "count",
        "chunk_size",
        "bit_generator",
        "validate",
        "item_config",
        "seed_block",
        "arrays",
    )

    def __init__(self, meta: dict, arrays: Mapping[str, np.ndarray]):
        self.settings = meta["settings"]
        self.specs = meta["specs"]
        self.count = meta["count"]
        self.chunk_size = meta["chunk_size"]
        self.bit_generator = meta["bit_generator"]
        self.validate = meta["validate"]
        self.item_config = meta["item_config"]
        self.seed_block = meta["seed_block"]
        self.arrays = arrays

    def seeds_for(self, start: int, stop: int) -> list[np.random.SeedSequence]:
        return [
            seed_sequence_at(self.seed_block, self.arrays, i)
            for i in range(start, stop)
        ]


def publish_sweep(
    settings,
    specs,
    seeds: Sequence[np.random.SeedSequence],
    *,
    chunk_size: int,
    bit_generator: str = "PCG64",
    validate: bool = True,
    item_config=None,
) -> SharedState:
    """Publish one data point's shared state; tasks then carry only indices."""
    if chunk_size < 1:
        raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
    block, arrays = encode_seed_sequences(seeds)
    return publish_payload(
        "sweep",
        arrays,
        {
            "settings": settings,
            "specs": tuple(specs),
            "count": block.count,
            "chunk_size": chunk_size,
            "bit_generator": bit_generator,
            "validate": validate,
            "item_config": item_config,
            "seed_block": block,
        },
    )


def execute_shm_chunk(task: ShmTask) -> dict[str, "AggregateStats"]:
    """Worker entry point of the zero-pickle sweep path.

    Recovers chunk ``task.index``'s bounds from the shared chunk size (the
    boundaries are a function of the trial count alone, so the fold tree
    is the same one the classic path walks), rebuilds the algorithms and
    seeds locally, and folds the chunk through the exact same
    :func:`repro.parallel.tasks.fold_chunk` the classic path uses.
    """
    from repro.parallel.tasks import fold_chunk

    context: _SweepContext = context_for(task.segment, "sweep", _SweepContext)  # type: ignore[assignment]
    start = task.index * context.chunk_size
    stop = min(start + context.chunk_size, context.count)
    if not (0 <= start < stop):
        raise ValidationError(
            f"chunk {task.index} out of range for {context.count} trials "
            f"(chunk_size {context.chunk_size})"
        )
    return fold_chunk(
        context.settings,
        [spec.build() for spec in context.specs],
        context.seeds_for(start, stop),
        bit_generator=context.bit_generator,
        validate=context.validate,
        item_config=context.item_config,
    )


# -- the stream-ensemble engine ---------------------------------------------------


class _StreamContext:
    """Worker-side decoded state of one ``run_stream_ensemble`` fan-out."""

    __slots__ = (
        "settings",
        "spec",
        "num_requests",
        "bit_generator",
        "seed_block",
        "arrays",
        "_network",
        "_has_network",
    )

    def __init__(self, meta: dict, arrays: Mapping[str, np.ndarray]):
        self.settings = meta["settings"]
        self.spec = meta["spec"]
        self.num_requests = meta["num_requests"]
        self.bit_generator = meta["bit_generator"]
        self.seed_block = meta["seed_block"]
        self.arrays = arrays
        self._network = None
        self._has_network = "net_indptr" in arrays

    def network(self) -> "MECNetwork | None":
        if not self._has_network:
            return None
        if self._network is None:
            self._network = network_from_arrays(self.arrays)
        return self._network

    def seed_at(self, index: int) -> np.random.SeedSequence:
        return seed_sequence_at(self.seed_block, self.arrays, index)


def publish_stream_ensemble(
    settings,
    spec,
    num_requests: int,
    seeds: Sequence[np.random.SeedSequence],
    *,
    bit_generator: str = "PCG64",
    network: "MECNetwork | None" = None,
) -> SharedState:
    """Publish a stream ensemble's shared state (network published once)."""
    block, arrays = encode_seed_sequences(seeds)
    if network is not None:
        arrays = {**arrays, **network_arrays(network)}
    return publish_payload(
        "stream",
        arrays,
        {
            "settings": settings,
            "spec": spec,
            "num_requests": num_requests,
            "bit_generator": bit_generator,
            "seed_block": block,
        },
    )


def execute_shm_stream(task: ShmTask):
    """Worker entry point: run one independent request stream of an ensemble."""
    from repro.experiments.batch import run_request_stream
    from repro.util.rng import generator_from_seed

    context: _StreamContext = context_for(task.segment, "stream", _StreamContext)  # type: ignore[assignment]
    return run_request_stream(
        context.settings,
        context.spec.build(),
        num_requests=context.num_requests,
        rng=generator_from_seed(
            context.seed_at(task.index), bit_generator=context.bit_generator
        ),
        network=context.network(),
    )


__all__ = [
    "SHM_ENV",
    "SEGMENT_PREFIX",
    "SHM_TASK_BYTE_BUDGET",
    "Attachment",
    "BufferSpec",
    "SeedBlock",
    "SharedState",
    "ShmManifest",
    "ShmTask",
    "active_segments",
    "attach",
    "attach_cached",
    "context_for",
    "encode_seed_sequences",
    "execute_shm_chunk",
    "execute_shm_stream",
    "network_arrays",
    "network_from_arrays",
    "publish",
    "publish_payload",
    "publish_stream_ensemble",
    "publish_sweep",
    "seed_sequence_at",
    "shm_enabled",
    "shutdown_shared_state",
]
