"""Dependency-free ASCII line charts for figure series.

The offline environment has no plotting stack, so the harness renders its
figure panels as terminal charts: one braille-free, monospace-safe line
chart per panel, multiple series overlaid with distinct glyphs.  These are
*reading aids* next to the exact tables -- the tables remain the source of
truth for numbers.

Example output::

    fig3(a): SFC reliability
    1.000 |                         I*H
          |            I*H
          |   I*H
    0.661 | *IH
          +--------------------------------
            0.0625     0.25       1.0
      I=ILP  *=Randomized  H=Heuristic
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.experiments.figures import FigureSeries
from repro.util.errors import ValidationError

#: Default glyph per algorithm (falls back to 1st letter, then digits).
DEFAULT_GLYPHS = {
    "ILP": "I",
    "Randomized": "*",
    "Heuristic": "H",
    "NoBackup": "0",
}


def render_ascii_chart(
    series_values: Mapping[str, Sequence[float]],
    x_labels: Sequence[object],
    height: int = 10,
    width: int = 60,
    title: str | None = None,
) -> str:
    """Render named series as an overlaid ASCII line chart.

    Parameters
    ----------
    series_values:
        Name -> y-values; all series must share ``len(x_labels)`` points.
    x_labels:
        Sweep values, printed under the axis (first/middle/last only).
    height, width:
        Plot area size in character cells.
    title:
        Optional title line.
    """
    if not series_values:
        raise ValidationError("no series to plot")
    num_points = len(x_labels)
    for name, ys in series_values.items():
        if len(ys) != num_points:
            raise ValidationError(
                f"series {name!r} has {len(ys)} points for {num_points} x labels"
            )
    if num_points == 0:
        raise ValidationError("cannot plot zero points")
    if height < 2 or width < 2:
        raise ValidationError(f"plot area too small: {width}x{height}")

    all_values = [y for ys in series_values.values() for y in ys]
    lo, hi = min(all_values), max(all_values)
    if hi - lo < 1e-12:
        hi = lo + 1.0  # flat series: park everything on one row

    def row_of(y: float) -> int:
        frac = (y - lo) / (hi - lo)
        return int(round((height - 1) * (1.0 - frac)))

    def col_of(i: int) -> int:
        if num_points == 1:
            return 0
        return int(round(i * (width - 1) / (num_points - 1)))

    grid = [[" "] * width for _ in range(height)]
    glyphs: dict[str, str] = {}
    used = set()
    for index, name in enumerate(series_values):
        glyph = DEFAULT_GLYPHS.get(name, name[:1] or str(index))
        while glyph in used:  # avoid collisions between unknown names
            glyph = chr(ord("a") + (ord(glyph) - ord("a") + 1) % 26)
        used.add(glyph)
        glyphs[name] = glyph

    for name, ys in series_values.items():
        for i, y in enumerate(ys):
            r, c = row_of(y), col_of(i)
            cell = grid[r][c]
            grid[r][c] = "+" if cell not in (" ", glyphs[name]) else glyphs[name]

    label_hi = f"{hi:.4g}"
    label_lo = f"{lo:.4g}"
    margin = max(len(label_hi), len(label_lo))
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        if r == 0:
            prefix = label_hi.rjust(margin)
        elif r == height - 1:
            prefix = label_lo.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix} |" + "".join(row))
    lines.append(" " * margin + " +" + "-" * width)

    # x labels: first, middle, last
    xaxis = [" "] * width
    picks = {0, num_points // 2, num_points - 1}
    for i in sorted(picks):
        text = str(x_labels[i])
        col = min(col_of(i), width - len(text))
        for j, ch in enumerate(text):
            xaxis[col + j] = ch
    lines.append(" " * margin + "  " + "".join(xaxis).rstrip())
    legend = "  ".join(f"{glyph}={name}" for name, glyph in glyphs.items())
    lines.append(" " * margin + "  " + legend)
    return "\n".join(lines)


def render_reliability_chart(series: FigureSeries, **kwargs: object) -> str:
    """Panel (a) of a figure as an ASCII chart."""
    values = {
        name: series.reliability_series(name) for name in series.algorithms()
    }
    title = kwargs.pop("title", f"{series.figure}(a): SFC reliability")
    return render_ascii_chart(values, series.x_values, title=title, **kwargs)  # type: ignore[arg-type]


def render_runtime_chart(series: FigureSeries, **kwargs: object) -> str:
    """Panel (c) of a figure as an ASCII chart (milliseconds)."""
    values = {
        name: [t * 1e3 for t in series.runtime_series(name)]
        for name in series.algorithms()
    }
    title = kwargs.pop("title", f"{series.figure}(c): running time (ms)")
    return render_ascii_chart(values, series.x_values, title=title, **kwargs)  # type: ignore[arg-type]
