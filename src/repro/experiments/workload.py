"""Per-trial instance generation.

One *trial* of the paper's protocol is: draw a fresh Waxman topology with
cloudlets and capacities, draw a VNF catalog, draw one request (chain
length, functions, expectation), deploy its primaries randomly onto
cloudlets, scale cloudlet capacities to the residual fraction, and build
the :class:`AugmentationProblem` the algorithms compete on.

All randomness flows from a single generator, so a harness seed makes the
entire sweep bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.admission.admit import random_primary_placement
from repro.core.items import ItemGenerationConfig
from repro.core.problem import AugmentationProblem
from repro.experiments.settings import ExperimentSettings
from repro.netmodel.graph import MECNetwork
from repro.netmodel.vnf import Request, VNFCatalog
from repro.topology.gtitm import generate_gtitm_topology
from repro.topology.placement import CloudletPlacementConfig, build_mec_network
from repro.util.rng import RandomState, as_rng


@dataclass(frozen=True)
class TrialInstance:
    """Everything one trial produced: the network and the problem."""

    network: MECNetwork
    request: Request
    problem: AugmentationProblem


def make_network(
    settings: ExperimentSettings, rng: np.random.Generator
) -> MECNetwork:
    """Draw one Waxman topology with cloudlet co-location per Section 7.1."""
    graph = generate_gtitm_topology(settings.num_aps, rng=rng)
    return build_mec_network(
        graph,
        config=CloudletPlacementConfig(
            cloudlet_fraction=settings.cloudlet_fraction,
            capacity_range=settings.capacity_range,
        ),
        rng=rng,
    )


def make_request(
    settings: ExperimentSettings,
    catalog: VNFCatalog,
    rng: np.random.Generator,
    name: str = "request",
) -> Request:
    """Draw one request: chain length, functions, and expectation."""
    if settings.sfc_length is not None:
        length = settings.sfc_length
    else:
        lo, hi = settings.sfc_length_range
        length = int(rng.integers(lo, hi + 1))
    chain = catalog.sample_chain(length, rng=rng)
    lo_e, hi_e = settings.expectation_range
    expectation = float(rng.uniform(lo_e, hi_e))
    return Request(name=name, chain=chain, expectation=expectation)


def make_trial(
    settings: ExperimentSettings,
    rng: RandomState = None,
    network: MECNetwork | None = None,
    item_config: ItemGenerationConfig | None = None,
    name: str = "trial",
) -> TrialInstance:
    """Generate one complete trial instance.

    Parameters
    ----------
    settings:
        The experimental configuration.
    rng:
        Seed/generator driving every draw of the trial.
    network:
        Optional pre-built network to reuse across trials (the default
        regenerates the topology per trial, matching the paper's
        per-request randomisation).
    item_config:
        Item-truncation overrides forwarded to the problem builder.
    """
    gen = as_rng(rng)
    if network is None:
        network = make_network(settings, gen)
    catalog = VNFCatalog.random(
        num_types=settings.num_vnf_types,
        demand_range=settings.demand_range,
        reliability_range=settings.reliability_range,
        rng=gen,
    )
    request = make_request(settings, catalog, gen, name=name)
    primaries = random_primary_placement(network, request, rng=gen)
    residuals = network.scaled_capacities(settings.residual_fraction)
    problem = AugmentationProblem.build(
        network,
        request,
        primaries,
        radius=settings.radius,
        residuals=residuals,
        item_config=item_config,
    )
    return TrialInstance(network=network, request=request, problem=problem)
