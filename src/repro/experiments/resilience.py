"""Fault scenarios and sweeps for the resilient request stream.

The paper evaluates provisioning quality at commit time; this module asks
the operational question instead: *given* the paper's augmentation, how
does the served system behave under failures, and how much does automatic
repair buy back?  It packages named fault scenarios (so the CLI, the
benchmark, and the CI smoke job all run the same configurations) and an
outage-severity sweep -- mean availability and repair metrics as a function
of the cloudlet MTBF.
"""

from __future__ import annotations

from repro.algorithms.base import AugmentationAlgorithm
from repro.experiments.settings import ExperimentSettings
from repro.resilience import FailureConfig, ResilienceConfig, run_resilient_stream
from repro.resilience.metrics import ResilienceReport
from repro.util.errors import ValidationError
from repro.util.rng import RandomState, as_rng, spawn_rng

#: Stream settings with enough slack capacity that repair has room to work
#: (the default paper settings saturate, which studies congestion rather
#: than fault tolerance).
RESILIENT_SETTINGS = ExperimentSettings(
    num_aps=30,
    cloudlet_fraction=0.2,
    capacity_range=(9000.0, 14000.0),
    sfc_length_range=(3, 5),
    radius=2,
    trials=1,
)

#: Named fault scenarios shared by the CLI, the benchmark, and CI.
FAULT_SCENARIOS: dict[str, ResilienceConfig] = {
    # no failure processes at all: the control
    "quiet": ResilienceConfig(
        horizon=30.0,
        failures=FailureConfig(instance_acceleration=0.0),
    ),
    # independent instance deaths only, at natural rates
    "churn": ResilienceConfig(
        horizon=30.0,
        failures=FailureConfig(instance_acceleration=1.0),
    ),
    # correlated cloudlet outages only
    "outages": ResilienceConfig(
        horizon=30.0,
        failures=FailureConfig(
            instance_acceleration=0.0, cloudlet_mtbf=10.0, cloudlet_mttr=1.5
        ),
    ),
    # both processes, with accelerated instance aging
    "stress": ResilienceConfig(
        horizon=30.0,
        failures=FailureConfig(
            instance_acceleration=2.0, cloudlet_mtbf=12.0, cloudlet_mttr=1.5
        ),
    ),
}


def run_fault_scenario(
    scenario: str,
    algorithm: AugmentationAlgorithm,
    num_requests: int = 8,
    settings: ExperimentSettings | None = None,
    rng: RandomState = None,
) -> ResilienceReport:
    """Run one named fault scenario end to end."""
    if scenario not in FAULT_SCENARIOS:
        raise ValidationError(
            f"unknown scenario {scenario!r}; choose from {sorted(FAULT_SCENARIOS)}"
        )
    return run_resilient_stream(
        settings or RESILIENT_SETTINGS,
        algorithm,
        num_requests,
        config=FAULT_SCENARIOS[scenario],
        rng=rng,
    )


def run_chaos_campaign(
    scenario: str = "quick",
    settings: ExperimentSettings | None = None,
    rng: RandomState = 0,
):
    """Run one scripted chaos campaign (see :mod:`repro.chaos`).

    Thin experiment-layer delegate so campaign runs sit next to the fault
    scenarios in notebooks and sweeps; the chaos package is imported
    lazily to keep this module's import graph acyclic.  Accepts a builtin
    scenario name, a scenario-JSON path, or a
    :class:`~repro.chaos.scenario.ChaosScenario`.
    """
    from repro.chaos.campaign import run_chaos_campaign as _run

    return _run(scenario, settings=settings or RESILIENT_SETTINGS, seed=rng)


def run_outage_sweep(
    algorithm: AugmentationAlgorithm,
    mtbfs: list[float] = (5.0, 10.0, 20.0),
    num_requests: int = 8,
    streams: int = 3,
    settings: ExperimentSettings | None = None,
    rng: RandomState = None,
) -> list[list[object]]:
    """Sweep outage severity (cloudlet MTBF) and average the fault metrics.

    Returns table rows ``[mtbf, availability, time below SLO, repair
    success rate, MTTR, degraded, unrepairable]`` averaged over ``streams``
    independent runs per point -- the resilience analogue of the paper's
    figure sweeps.
    """
    if streams < 1:
        raise ValidationError(f"streams must be >= 1, got {streams}")
    gen = as_rng(rng)
    rows: list[list[object]] = []
    for mtbf in mtbfs:
        if mtbf <= 0:
            raise ValidationError(f"cloudlet MTBF must be positive, got {mtbf}")
        config = ResilienceConfig(
            horizon=30.0,
            failures=FailureConfig(
                instance_acceleration=0.0, cloudlet_mtbf=mtbf, cloudlet_mttr=1.5
            ),
        )
        avail = below = success = mttr = degraded = unrepairable = 0.0
        for child in spawn_rng(gen, streams):
            report = run_resilient_stream(
                settings or RESILIENT_SETTINGS,
                algorithm,
                num_requests,
                config=config,
                rng=child,
            )
            avail += report.mean_availability
            below += report.time_below_slo
            success += report.repair_success_rate
            mttr += report.mttr
            degraded += report.chains_degraded
            unrepairable += report.chains_unrepairable
        rows.append(
            [
                mtbf,
                round(avail / streams, 4),
                round(below / streams, 3),
                round(success / streams, 4),
                round(mttr / streams, 4),
                round(degraded / streams, 2),
                round(unrepairable / streams, 2),
            ]
        )
    return rows
