"""The sweeps behind Figures 1, 2, and 3 of the paper.

Each ``run_figureN`` performs the paper's parameter sweep with the default
algorithm trio (ILP, Randomized, Heuristic), returning a
:class:`FigureSeries` holding, per sweep value, the per-algorithm aggregate
statistics -- reliabilities for panel (a), usage ratios for panel (b), and
running times for panel (c).  The benchmark files under ``benchmarks/``
call these and print the series as tables.

Sweep definitions (Section 7.2):

* **Figure 1** -- SFC length from 2 to 20 (default grid: even lengths), at
  25% residual capacity and function reliability in [0.8, 0.9];
* **Figure 2** -- function reliability drawn from [0.55, 0.65), [0.65,
  0.75), [0.75, 0.85), [0.85, 0.95];
* **Figure 3** -- residual capacity fraction 1/16, 1/8, 1/4, 1/2, 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.algorithms.base import AugmentationAlgorithm
from repro.algorithms.heuristic import MatchingHeuristic
from repro.algorithms.ilp_exact import ILPAlgorithm
from repro.algorithms.randomized import RandomizedRounding
from repro.experiments.runner import AggregateStats, run_point
from repro.experiments.settings import DEFAULT_SETTINGS, ExperimentSettings
from repro.util.rng import RandomState, as_rng, spawn_rng

#: The paper's Figure 2 reliability intervals.
FIG2_RELIABILITY_INTERVALS: tuple[tuple[float, float], ...] = (
    (0.55, 0.65),
    (0.65, 0.75),
    (0.75, 0.85),
    (0.85, 0.95),
)

#: The paper's Figure 3 residual-capacity fractions.
FIG3_RESIDUAL_FRACTIONS: tuple[float, ...] = (1 / 16, 1 / 8, 1 / 4, 1 / 2, 1.0)

#: Figure 1's default SFC-length grid ("from 2 to 20").
FIG1_SFC_LENGTHS: tuple[int, ...] = (2, 4, 6, 8, 10, 12, 14, 16, 18, 20)


def default_algorithms() -> list[AugmentationAlgorithm]:
    """The trio every figure compares: ILP, Randomized, Heuristic."""
    return [ILPAlgorithm(), RandomizedRounding(), MatchingHeuristic()]


@dataclass
class FigureSeries:
    """One figure's full sweep output.

    Attributes
    ----------
    figure:
        Figure label (``"fig1"``...).
    parameter:
        Name of the swept parameter.
    x_values:
        The sweep grid (labels for interval sweeps).
    points:
        Per sweep value: algorithm name -> :class:`AggregateStats`.
    """

    figure: str
    parameter: str
    x_values: list[object] = field(default_factory=list)
    points: list[dict[str, AggregateStats]] = field(default_factory=list)

    def algorithms(self) -> list[str]:
        """Algorithm names present in the series, in insertion order."""
        if not self.points:
            return []
        return list(self.points[0].keys())

    def reliability_series(self, algorithm: str) -> list[float]:
        """Panel (a): mean achieved reliability across the sweep."""
        return [point[algorithm].reliability for point in self.points]

    def runtime_series(self, algorithm: str) -> list[float]:
        """Panel (c): mean running time (seconds) across the sweep."""
        return [point[algorithm].runtime for point in self.points]

    def usage_series(self, algorithm: str) -> list[tuple[float, float, float]]:
        """Panel (b): mean (avg, min, max) usage ratio across the sweep."""
        return [point[algorithm].usage for point in self.points]


def _sweep(
    figure: str,
    parameter: str,
    configs: Sequence[tuple[object, ExperimentSettings]],
    algorithms: Sequence[AugmentationAlgorithm] | None,
    trials: int | None,
    rng: RandomState,
    validate: bool,
    jobs: int | None = None,
    chunk_size: int | None = None,
) -> FigureSeries:
    algos = list(algorithms) if algorithms is not None else default_algorithms()
    gen = as_rng(rng)
    series = FigureSeries(figure=figure, parameter=parameter)
    for child, (x, settings) in zip(spawn_rng(gen, len(configs)), configs):
        series.x_values.append(x)
        series.points.append(
            run_point(
                settings,
                algos,
                trials=trials,
                rng=child,
                validate=validate,
                jobs=jobs,
                chunk_size=chunk_size,
            )
        )
    return series


def run_figure1(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    sfc_lengths: Sequence[int] = FIG1_SFC_LENGTHS,
    algorithms: Sequence[AugmentationAlgorithm] | None = None,
    trials: int | None = None,
    rng: RandomState = None,
    validate: bool = True,
    jobs: int | None = None,
) -> FigureSeries:
    """Figure 1: vary the SFC length of a request from 2 to 20."""
    configs = [(length, settings.vary(sfc_length=length)) for length in sfc_lengths]
    return _sweep("fig1", "sfc_length", configs, algorithms, trials, rng, validate, jobs=jobs)


def run_figure2(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    intervals: Sequence[tuple[float, float]] = FIG2_RELIABILITY_INTERVALS,
    algorithms: Sequence[AugmentationAlgorithm] | None = None,
    trials: int | None = None,
    rng: RandomState = None,
    validate: bool = True,
    jobs: int | None = None,
) -> FigureSeries:
    """Figure 2: vary the network function reliability from ~0.6 to ~0.9."""
    configs = [
        (f"[{lo:.2f},{hi:.2f})", settings.vary(reliability_range=(lo, hi)))
        for lo, hi in intervals
    ]
    return _sweep("fig2", "reliability_interval", configs, algorithms, trials, rng, validate, jobs=jobs)


def run_figure3(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    fractions: Sequence[float] = FIG3_RESIDUAL_FRACTIONS,
    algorithms: Sequence[AugmentationAlgorithm] | None = None,
    trials: int | None = None,
    rng: RandomState = None,
    validate: bool = True,
    jobs: int | None = None,
) -> FigureSeries:
    """Figure 3: vary the residual computing capacity from 1/16 to 1."""
    configs = [
        (fraction, settings.vary(residual_fraction=fraction)) for fraction in fractions
    ]
    return _sweep("fig3", "residual_fraction", configs, algorithms, trials, rng, validate, jobs=jobs)
