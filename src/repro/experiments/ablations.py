"""Programmatic ablation sweeps (beyond the paper's three figures).

Each function mirrors :mod:`repro.experiments.figures`' sweep style but
varies a *design* dimension rather than a workload parameter:

* :func:`run_radius_ablation` -- the locality radius ``l`` (the paper
  fixes ``l = 1``; the unrestricted extreme reproduces the prior-work
  setting where backups go anywhere);
* :func:`run_truncation_ablation` -- item-generation truncation: the
  literal ``K_i`` item set vs the default sound truncations, verifying the
  truncations change nothing observable while shrinking the models;
* :func:`run_expectation_ablation` -- the reliability expectation level,
  the one workload parameter the paper leaves unstated (EXPERIMENTS.md
  documents the default choice; this sweep shows its effect).

All return a :class:`FigureSeries`, so the existing reporting and
serialization machinery applies unchanged.
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.base import AugmentationAlgorithm
from repro.core.items import ItemGenerationConfig
from repro.experiments.figures import FigureSeries, default_algorithms
from repro.experiments.runner import run_point
from repro.experiments.settings import DEFAULT_SETTINGS, ExperimentSettings
from repro.util.rng import RandomState, as_rng, spawn_rng

#: Default radius grid: same-cloudlet, the paper's l=1, wider, unrestricted.
RADIUS_GRID: tuple[int, ...] = (0, 1, 2, 99)

#: Default expectation levels for the expectation ablation.
EXPECTATION_GRID: tuple[float, ...] = (0.90, 0.95, 0.99, 0.999)


def run_radius_ablation(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    radii: Sequence[int] = RADIUS_GRID,
    algorithms: Sequence[AugmentationAlgorithm] | None = None,
    trials: int = 10,
    rng: RandomState = None,
    jobs: int | None = None,
) -> FigureSeries:
    """Sweep the locality radius ``l``."""
    algos = list(algorithms) if algorithms is not None else default_algorithms()
    gen = as_rng(rng)
    series = FigureSeries(figure="abl-radius", parameter="radius")
    for child, radius in zip(spawn_rng(gen, len(radii)), radii):
        series.x_values.append(radius)
        series.points.append(
            run_point(
                settings.vary(radius=radius),
                algos,
                trials=trials,
                rng=child,
                validate=False,
                jobs=jobs,
            )
        )
    return series


def run_truncation_ablation(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    algorithms: Sequence[AugmentationAlgorithm] | None = None,
    trials: int = 10,
    rng: RandomState = None,
    jobs: int | None = None,
) -> FigureSeries:
    """Compare the literal ``K_i`` item sets against the default truncation.

    The two points share the same seed, so trial ``t`` solves the *same
    workload* under both item-generation regimes; identical reliabilities
    confirm the truncations are observation-free.
    """
    algos = list(algorithms) if algorithms is not None else default_algorithms()
    seed = int(as_rng(rng).integers(0, 2**62))
    series = FigureSeries(figure="abl-truncation", parameter="item_generation")
    for label, config in (
        ("default", ItemGenerationConfig()),
        ("exact-K_i", ItemGenerationConfig.exact()),
    ):
        series.x_values.append(label)
        series.points.append(
            run_point(
                settings,
                algos,
                trials=trials,
                rng=seed,
                validate=False,
                jobs=jobs,
                item_config=config,
            )
        )
    return series


def run_expectation_ablation(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    expectations: Sequence[float] = EXPECTATION_GRID,
    algorithms: Sequence[AugmentationAlgorithm] | None = None,
    trials: int = 10,
    rng: RandomState = None,
    jobs: int | None = None,
) -> FigureSeries:
    """Sweep the (paper-unstated) reliability expectation level.

    Points are *paired*: every expectation level replays the same workloads
    (identical seed per point; only the expectation draw differs), so
    differences across the sweep are attributable to ``rho`` alone.
    """
    algos = list(algorithms) if algorithms is not None else default_algorithms()
    seed = int(as_rng(rng).integers(0, 2**62))
    series = FigureSeries(figure="abl-expectation", parameter="rho")
    for rho in expectations:
        series.x_values.append(rho)
        series.points.append(
            run_point(
                settings.vary(expectation_range=(rho, rho)),
                algos,
                trials=trials,
                rng=seed,
                validate=False,
                jobs=jobs,
            )
        )
    return series
