"""Trial-count convergence analysis.

The paper averages 1,000 trials per data point; this repository's benches
default to far fewer.  How many trials does a stable mean actually need?
:func:`convergence_table` answers empirically: it runs one algorithm over
a growing trial set and reports, at chosen checkpoints, the running mean
reliability and its standard error -- so a user can pick ``REPRO_TRIALS``
with a known confidence half-width instead of folklore.

Trials are *reused* across checkpoints (checkpoint ``n`` summarises the
first ``n`` trials of one stream), so the table is internally consistent
and costs exactly ``max(checkpoints)`` trials.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.algorithms.base import AugmentationAlgorithm
from repro.experiments.settings import ExperimentSettings
from repro.experiments.workload import make_trial
from repro.util.errors import ValidationError
from repro.util.rng import RandomState, as_rng, spawn_rng

#: Default checkpoint grid (log-ish spacing up to the bench default x10).
DEFAULT_CHECKPOINTS: tuple[int, ...] = (5, 10, 25, 50, 100)


@dataclass(frozen=True)
class ConvergencePoint:
    """Running statistics after ``trials`` trials."""

    trials: int
    mean_reliability: float
    std_error: float

    @property
    def half_width_95(self) -> float:
        """~95% confidence half-width (1.96 standard errors)."""
        return 1.96 * self.std_error


def convergence_table(
    settings: ExperimentSettings,
    algorithm: AugmentationAlgorithm,
    checkpoints: Sequence[int] = DEFAULT_CHECKPOINTS,
    rng: RandomState = None,
) -> list[ConvergencePoint]:
    """Run ``max(checkpoints)`` trials and summarise at each checkpoint.

    Parameters
    ----------
    settings:
        Workload configuration (one data point's settings).
    algorithm:
        The algorithm whose mean reliability is being stabilised.
    checkpoints:
        Strictly increasing positive trial counts.
    rng:
        Seed/generator for the trial stream.
    """
    checkpoints = list(checkpoints)
    if not checkpoints:
        raise ValidationError("need at least one checkpoint")
    if any(c <= 0 for c in checkpoints) or checkpoints != sorted(set(checkpoints)):
        raise ValidationError(
            f"checkpoints must be strictly increasing positive ints, got {checkpoints}"
        )

    gen = as_rng(rng)
    total = checkpoints[-1]
    reliabilities: list[float] = []
    points: list[ConvergencePoint] = []
    remaining = iter(checkpoints)
    next_checkpoint = next(remaining)
    for child in spawn_rng(gen, total):
        instance = make_trial(settings, rng=child)
        result = algorithm.solve(instance.problem, rng=child)
        reliabilities.append(result.reliability)
        if len(reliabilities) == next_checkpoint:
            points.append(_summarise(reliabilities))
            next_checkpoint = next(remaining, None)  # type: ignore[arg-type]
            if next_checkpoint is None:
                break
    return points


def _summarise(values: Sequence[float]) -> ConvergencePoint:
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        std_error = math.sqrt(variance / n)
    else:
        std_error = float("inf")
    return ConvergencePoint(trials=n, mean_reliability=mean, std_error=std_error)


def trials_for_half_width(
    points: Sequence[ConvergencePoint], target_half_width: float
) -> int | None:
    """Smallest checkpoint whose 95% half-width is within the target.

    Returns ``None`` when no checkpoint reaches it -- extrapolate with the
    usual ``1/sqrt(n)`` scaling from the last point in that case.
    """
    if target_half_width <= 0:
        raise ValidationError(f"target half-width must be > 0, got {target_half_width}")
    for point in points:
        if point.half_width_95 <= target_half_width:
            return point.trials
    return None
