"""Experiment harness reproducing Section 7 of the paper.

* :mod:`~repro.experiments.settings` -- the default parameters of
  Section 7.1 as one frozen dataclass;
* :mod:`~repro.experiments.workload` -- per-trial instance generation
  (topology, catalog, request, primary placement, residual scaling);
* :mod:`~repro.experiments.runner` -- run a set of algorithms over many
  trials and aggregate the statistics the figures plot;
* :mod:`~repro.experiments.figures` -- the sweeps behind Figures 1, 2, 3
  (each with its (a) reliability, (b) usage, (c) running-time panels);
* :mod:`~repro.experiments.reporting` -- plain-text rendering of series.
"""

from repro.experiments.figures import (
    FigureSeries,
    run_figure1,
    run_figure2,
    run_figure3,
)
from repro.experiments.runner import AggregateStats, TrialOutcome, run_point
from repro.experiments.settings import DEFAULT_SETTINGS, ExperimentSettings
from repro.experiments.workload import TrialInstance, make_trial
from repro.experiments.reporting import (
    render_reliability_panel,
    render_runtime_panel,
    render_usage_panel,
)

__all__ = [
    "AggregateStats",
    "DEFAULT_SETTINGS",
    "ExperimentSettings",
    "FigureSeries",
    "TrialInstance",
    "TrialOutcome",
    "make_trial",
    "render_reliability_panel",
    "render_runtime_panel",
    "render_usage_panel",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_point",
]
