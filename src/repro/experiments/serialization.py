"""Persisting experiment series to CSV and JSON.

The benchmark suite prints figure panels as text tables; downstream users
plotting with their own tools need machine-readable output.  This module
flattens a :class:`FigureSeries` into

* **CSV** -- one row per (sweep value, algorithm) with every aggregate
  metric as a column (long/tidy format, plot-tool friendly);
* **JSON** -- a nested document preserving the sweep structure, suitable
  for archiving alongside the run's settings and seed.

Both writers are loss-aware: everything an :class:`AggregateStats` exposes
is included, so a saved run can answer later questions (violation trials,
peak usage) without re-running.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping

from repro.experiments.figures import FigureSeries
from repro.experiments.runner import AggregateStats

#: Columns of the tidy CSV, in order.
CSV_COLUMNS = (
    "figure",
    "parameter",
    "x",
    "algorithm",
    "trials",
    "reliability",
    "runtime_seconds",
    "usage_mean",
    "usage_min",
    "usage_max",
    "peak_usage",
    "expectation_met_rate",
    "mean_backups",
    "violation_trials",
)


def _stats_record(
    series: FigureSeries, x: object, name: str, stats: AggregateStats
) -> dict[str, object]:
    mean, lo, hi = stats.usage
    return {
        "figure": series.figure,
        "parameter": series.parameter,
        "x": x,
        "algorithm": name,
        "trials": stats.trials,
        "reliability": stats.reliability,
        "runtime_seconds": stats.runtime,
        "usage_mean": mean,
        "usage_min": lo,
        "usage_max": hi,
        "peak_usage": stats.peak_usage,
        "expectation_met_rate": stats.expectation_met_rate,
        "mean_backups": stats.mean_backups,
        "violation_trials": stats.violation_trials,
    }


def series_records(series: FigureSeries) -> list[dict[str, object]]:
    """Flatten a series into tidy records (one per sweep-value x algorithm)."""
    records = []
    for x, point in zip(series.x_values, series.points):
        for name, stats in point.items():
            records.append(_stats_record(series, x, name, stats))
    return records


def write_series_csv(series: FigureSeries, path: str | Path) -> Path:
    """Write the series as a tidy CSV; returns the path written."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=CSV_COLUMNS)
        writer.writeheader()
        for record in series_records(series):
            writer.writerow(record)
    return path


def write_series_json(
    series: FigureSeries,
    path: str | Path,
    metadata: Mapping[str, object] | None = None,
) -> Path:
    """Write the series (plus optional run metadata) as JSON."""
    path = Path(path)
    document = {
        "figure": series.figure,
        "parameter": series.parameter,
        "metadata": dict(metadata or {}),
        "points": [
            {
                "x": x,
                "algorithms": {
                    name: _stats_record(series, x, name, stats)
                    for name, stats in point.items()
                },
            }
            for x, point in zip(series.x_values, series.points)
        ],
    }
    path.write_text(json.dumps(document, indent=2, default=str) + "\n")
    return path


def read_series_csv(path: str | Path) -> list[dict[str, str]]:
    """Read a tidy CSV back as string records (round-trip helper)."""
    with Path(path).open(newline="") as handle:
        return list(csv.DictReader(handle))
