"""Shared seeded-instance factory for tests and benchmarks.

Differential tests, fuzzers, and benchmarks all need the same thing: a
deterministic stream of small-but-varied :class:`AugmentationProblem`
instances spanning topology families, chain lengths, and locality radii.
Before this module existed, each consumer rolled its own generation loop --
which meant the differential suite and the benchmarks silently exercised
*different* instances.  Now there is exactly one recipe:

* :data:`TOPOLOGY_FAMILIES` -- named topology builders ``(n, rng) -> graph``;
* :class:`InstanceSpec` -- a frozen, hashable description of one instance
  (family, sizes, radius, residual scale, seed); its ``seed`` drives every
  random draw, so a spec rebuilds the bit-identical problem anywhere;
* :func:`build_instance` -- spec to :class:`AugmentationProblem`;
* :func:`differential_suite` -- the canonical spec stream used by the
  incremental-vs-rebuild differential tests and the benchmark smoke mode.

``tests/conftest.py`` and ``benchmarks/conftest.py`` both expose these via
fixtures, so "the 50-instance differential suite" means the same 50
problems in either tree.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator, Mapping

import networkx as nx
import numpy as np

from repro.core.items import ItemGenerationConfig
from repro.core.problem import AugmentationProblem
from repro.netmodel.graph import MECNetwork
from repro.netmodel.vnf import Request, ServiceFunctionChain, VNFType
from repro.topology.families import (
    barabasi_albert_topology,
    erdos_renyi_topology,
    grid_topology,
    ring_topology,
    tree_topology,
)
from repro.topology.gtitm import generate_gtitm_topology
from repro.util.errors import ValidationError
from repro.util.rng import as_rng

#: Named topology builders ``(num_nodes, rng) -> nx.Graph``.
TOPOLOGY_FAMILIES: dict[str, Callable[[int, np.random.Generator], "nx.Graph"]] = {
    "waxman": lambda n, rng: generate_gtitm_topology(n, rng=rng),
    "er": lambda n, rng: erdos_renyi_topology(n, 0.25, rng=rng),
    "ba": lambda n, rng: barabasi_albert_topology(n, 2, rng=rng),
    "grid": lambda n, rng: grid_topology(max(2, int(n**0.5)), max(2, int(n**0.5))),
    "ring": lambda n, rng: ring_topology(max(3, n)),
    "tree": lambda n, rng: tree_topology(n, branching=2),
}


@dataclass(frozen=True)
class InstanceSpec:
    """Deterministic description of one random augmentation instance.

    Every random draw flows from ``seed``, so equal specs build
    bit-identical problems in any process.
    """

    family: str = "waxman"
    num_nodes: int = 16
    cloudlet_count: int = 4
    chain_length: int = 3
    radius: int = 1
    residual_scale: float = 0.5
    seed: int = 0
    max_backups: int | None = 6

    def __post_init__(self) -> None:
        if self.family not in TOPOLOGY_FAMILIES:
            raise ValidationError(
                f"unknown topology family {self.family!r}; "
                f"choose from {sorted(TOPOLOGY_FAMILIES)}"
            )
        if self.num_nodes < 2:
            raise ValidationError(f"num_nodes must be >= 2, got {self.num_nodes}")
        if self.cloudlet_count < 1:
            raise ValidationError(
                f"cloudlet_count must be >= 1, got {self.cloudlet_count}"
            )
        if self.chain_length < 1:
            raise ValidationError(f"chain_length must be >= 1, got {self.chain_length}")
        if self.radius < 0:
            raise ValidationError(f"radius must be >= 0, got {self.radius}")
        if not 0.0 < self.residual_scale <= 1.0:
            raise ValidationError(
                f"residual_scale must be in (0, 1], got {self.residual_scale}"
            )

    @classmethod
    def from_config(cls, config: Mapping[str, object]) -> "InstanceSpec":
        """Build a spec from a plain mapping (e.g. a hypothesis-drawn dict
        or a JSON corpus entry); unknown keys are rejected."""
        return cls(**dict(config))


@dataclass(frozen=True)
class ConstructionInputs:
    """The raw pieces of one instance, before problem construction.

    Splitting the random draws (:func:`build_inputs`) from the
    deterministic construction (:meth:`build`) lets the kernel benchmarks
    and differential tests time or repeat *construction only* --
    neighborhoods plus item generation -- without re-rolling topologies.
    """

    network: MECNetwork
    request: Request
    primary_placement: tuple[int, ...]
    radius: int
    residuals: Mapping[int, float]
    item_config: ItemGenerationConfig

    def build(self) -> AugmentationProblem:
        """Construct the problem (items + neighborhoods) from these inputs."""
        return AugmentationProblem.build(
            self.network,
            self.request,
            self.primary_placement,
            radius=self.radius,
            residuals=self.residuals,
            item_config=self.item_config,
        )


def build_instance(spec: InstanceSpec) -> AugmentationProblem:
    """Materialise the :class:`AugmentationProblem` a spec describes.

    Topology, cloudlet selection, capacities, VNF types, expectation, and
    primary placement are all drawn from ``as_rng(spec.seed)`` in a fixed
    order -- the construction is deterministic per spec.
    """
    return build_inputs(spec).build()


def build_inputs(spec: InstanceSpec) -> ConstructionInputs:
    """Draw the random pieces of a spec's instance (same order as always)."""
    gen = as_rng(spec.seed)
    graph = TOPOLOGY_FAMILIES[spec.family](spec.num_nodes, gen)
    nodes = sorted(graph.nodes)
    cloudlet_count = min(spec.cloudlet_count, len(nodes))
    chosen = gen.choice(len(nodes), size=cloudlet_count, replace=False)
    capacities = {nodes[int(i)]: float(gen.uniform(400, 1600)) for i in chosen}
    network = MECNetwork(graph, capacities)
    types = [
        VNFType(
            f"f{i}",
            demand=float(gen.uniform(80, 400)),
            reliability=float(gen.uniform(0.5, 0.98)),
        )
        for i in range(spec.chain_length)
    ]
    request = Request(
        "fuzz",
        ServiceFunctionChain(types),
        expectation=float(gen.uniform(0.85, 0.999)),
    )
    cloudlets = list(network.cloudlets)
    primaries = [
        cloudlets[int(gen.integers(0, len(cloudlets)))]
        for _ in range(spec.chain_length)
    ]
    residuals = {v: capacities[v] * spec.residual_scale for v in capacities}
    return ConstructionInputs(
        network=network,
        request=request,
        primary_placement=tuple(primaries),
        radius=spec.radius,
        residuals=residuals,
        item_config=ItemGenerationConfig(max_backups_per_function=spec.max_backups),
    )


def differential_suite(count: int, base_seed: int = 7000) -> Iterator[InstanceSpec]:
    """The canonical spec stream of the differential suite.

    Cycles topology families, chain lengths, radii, and residual scales so
    any prefix of the stream already mixes all axes; ``count`` specs with
    seeds ``base_seed .. base_seed + count - 1``.
    """
    families = sorted(TOPOLOGY_FAMILIES)
    lengths = (1, 2, 3, 4, 6)
    radii = (0, 1, 2, 3)
    scales = (0.25, 0.5, 1.0)
    for i in range(count):
        yield InstanceSpec(
            family=families[i % len(families)],
            num_nodes=10 + (3 * i) % 15,
            cloudlet_count=2 + i % 4,
            chain_length=lengths[i % len(lengths)],
            radius=radii[i % len(radii)],
            residual_scale=scales[i % len(scales)],
            seed=base_seed + i,
        )


def vary(spec: InstanceSpec, **changes: object) -> InstanceSpec:
    """A copy of ``spec`` with fields replaced (validation re-runs)."""
    return replace(spec, **changes)
