"""Default experiment parameters (Section 7.1 of the paper).

The paper's settings, verbatim:

* MEC network of 100 APs; cloudlets at 10% of APs, randomly co-located;
* GT-ITM (Waxman) topologies;
* cloudlet computing capacity uniform in [4000, 8000] MHz;
* |F| = 30 network function types, demand uniform in [200, 400] MHz;
* SFC length uniform in {3..10}, functions drawn uniformly from F;
* primaries deployed randomly onto cloudlets;
* secondaries restricted to l = 1 hop;
* default residual capacity fraction 25%;
* default per-function instance reliability uniform in [0.8, 0.9];
* 1,000 random trials per data point.

One parameter the paper does not state is the distribution of the
reliability expectation ``rho_j``; we default to uniform in
[0.95, 0.995], which reproduces the reported reliability plateaus (e.g.
~98% at abundant capacity in Fig. 3(a)) -- see EXPERIMENTS.md.

The trial count is overridable through the ``REPRO_TRIALS`` environment
variable so the benchmark suite can run quickly while the full 1,000-trial
protocol remains one env var away.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.util.errors import ValidationError

#: Environment variable overriding the per-point trial count.
TRIALS_ENV_VAR = "REPRO_TRIALS"


@dataclass(frozen=True)
class ExperimentSettings:
    """All knobs of one experimental configuration.

    Every figure sweep starts from :data:`DEFAULT_SETTINGS` and varies one
    field via :meth:`vary`.
    """

    num_aps: int = 100
    cloudlet_fraction: float = 0.10
    capacity_range: tuple[float, float] = (4000.0, 8000.0)
    num_vnf_types: int = 30
    demand_range: tuple[float, float] = (200.0, 400.0)
    reliability_range: tuple[float, float] = (0.8, 0.9)
    sfc_length_range: tuple[int, int] = (3, 10)
    sfc_length: int | None = None  # fixed length overrides the range (Fig. 1)
    expectation_range: tuple[float, float] = (0.95, 0.995)
    radius: int = 1
    residual_fraction: float = 0.25
    trials: int = 1000

    def __post_init__(self) -> None:
        if self.num_aps <= 0:
            raise ValidationError(f"num_aps must be positive, got {self.num_aps}")
        if not (0.0 < self.cloudlet_fraction <= 1.0):
            raise ValidationError(
                f"cloudlet_fraction must be in (0, 1], got {self.cloudlet_fraction}"
            )
        lo, hi = self.sfc_length_range
        if not (1 <= lo <= hi):
            raise ValidationError(f"invalid sfc_length_range {self.sfc_length_range}")
        if self.sfc_length is not None and self.sfc_length < 1:
            raise ValidationError(f"sfc_length must be >= 1, got {self.sfc_length}")
        lo_e, hi_e = self.expectation_range
        if not (0.0 < lo_e <= hi_e <= 1.0):
            raise ValidationError(f"invalid expectation_range {self.expectation_range}")
        if self.radius < 0:
            raise ValidationError(f"radius must be >= 0, got {self.radius}")
        if not (0.0 < self.residual_fraction <= 1.0):
            raise ValidationError(
                f"residual_fraction must be in (0, 1], got {self.residual_fraction}"
            )
        if self.trials <= 0:
            raise ValidationError(f"trials must be positive, got {self.trials}")

    def vary(self, **changes: object) -> "ExperimentSettings":
        """A copy with some fields replaced (sweep helper)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    @property
    def effective_trials(self) -> int:
        """Trial count after applying the ``REPRO_TRIALS`` override."""
        raw = os.environ.get(TRIALS_ENV_VAR)
        if raw is None:
            return self.trials
        try:
            value = int(raw)
        except ValueError:
            raise ValidationError(f"{TRIALS_ENV_VAR}={raw!r} is not an integer") from None
        if value <= 0:
            raise ValidationError(f"{TRIALS_ENV_VAR} must be positive, got {value}")
        return value


#: The paper's Section 7.1 defaults.
DEFAULT_SETTINGS = ExperimentSettings()
