"""Plain-text rendering of figure series.

Turns a :class:`FigureSeries` into the same rows the paper's figures plot:
one table per panel.  The benchmark files print these so that
``pytest benchmarks/ --benchmark-only`` output can be read side by side
with the paper.
"""

from __future__ import annotations

from repro.experiments.figures import FigureSeries
from repro.util.tables import format_table


def render_reliability_panel(series: FigureSeries, title: str | None = None) -> str:
    """Panel (a): mean achieved SFC reliability per algorithm."""
    algorithms = series.algorithms()
    headers = [series.parameter, *algorithms]
    rows = []
    for i, x in enumerate(series.x_values):
        rows.append([x, *(series.points[i][a].reliability for a in algorithms)])
    return format_table(
        headers, rows, floatfmt=".4f", title=title or f"{series.figure}(a): SFC reliability"
    )


def render_usage_panel(
    series: FigureSeries, algorithm: str = "Randomized", title: str | None = None
) -> str:
    """Panel (b): capacity usage ratio (avg/min/max) of one algorithm."""
    headers = [series.parameter, "usage_avg", "usage_min", "usage_max", "peak"]
    rows = []
    for i, x in enumerate(series.x_values):
        stats = series.points[i][algorithm]
        mean, lo, hi = stats.usage
        rows.append([x, mean, lo, hi, stats.peak_usage])
    return format_table(
        headers,
        rows,
        floatfmt=".4f",
        title=title or f"{series.figure}(b): capacity usage ratio ({algorithm})",
    )


def render_runtime_panel(series: FigureSeries, title: str | None = None) -> str:
    """Panel (c): mean running time (milliseconds) per algorithm."""
    algorithms = series.algorithms()
    headers = [series.parameter, *(f"{a} (ms)" for a in algorithms)]
    rows = []
    for i, x in enumerate(series.x_values):
        rows.append(
            [x, *(series.points[i][a].runtime * 1e3 for a in algorithms)]
        )
    return format_table(
        headers, rows, floatfmt=".3f", title=title or f"{series.figure}(c): running time"
    )


def render_figure(series: FigureSeries, usage_algorithm: str = "Randomized") -> str:
    """All three panels of one figure, separated by blank lines."""
    parts = [render_reliability_panel(series)]
    if usage_algorithm in series.algorithms():
        parts.append(render_usage_panel(series, usage_algorithm))
    parts.append(render_runtime_panel(series))
    return "\n\n".join(parts)
