"""System-level extension: admit and augment a *stream* of requests.

The paper's formulation and evaluation are per-request: one admitted
request, a residual-capacity snapshot, one augmentation.  A network
operator, however, serves many requests against shared capacity, and each
request's backups shrink the room available to the next.  This module
composes the paper's building blocks into that system-level loop:

1. requests arrive one at a time (a fresh chain and expectation per
   request, drawn exactly like the paper's workload);
2. each is admitted via :func:`random_primary_placement` (capacity-checked)
   or the DAG framework;
3. the chosen augmentation algorithm places its backups against the live
   shared ledger;
4. committed placements stay -- the next request sees less capacity.

The batch report records per-request outcomes and system totals
(acceptance rate, expectation-met rate, capacity utilisation), enabling the
"how many requests can a network serve at a given SLO" question the
per-request figures cannot answer.  Used by
``benchmarks/bench_batch_stream.py`` and the multi-tenant example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.admission.admit import random_primary_placement
from repro.algorithms.base import AugmentationAlgorithm
from repro.core.problem import AugmentationProblem
from repro.core.solution import AugmentationSolution
from repro.experiments.settings import ExperimentSettings
from repro.experiments.workload import make_network, make_request
from repro.netmodel.capacity import CapacityLedger
from repro.netmodel.graph import MECNetwork
from repro.netmodel.vnf import VNFCatalog
from repro.util.errors import CapacityError, InfeasibleError
from repro.util.rng import (
    RandomState,
    as_rng,
    generator_from_seed,
    spawn_seed_sequences,
)


@dataclass(frozen=True)
class BatchRequestOutcome:
    """One request's fate in the stream."""

    name: str
    admitted: bool
    reliability: float
    expectation: float
    expectation_met: bool
    backups: int


@dataclass
class BatchReport:
    """Aggregated outcome of one request stream."""

    outcomes: list[BatchRequestOutcome] = field(default_factory=list)
    final_utilisation: float = 0.0

    @property
    def num_requests(self) -> int:
        return len(self.outcomes)

    @property
    def acceptance_rate(self) -> float:
        """Fraction of requests whose primaries could be placed."""
        if not self.outcomes:
            return 0.0
        return sum(o.admitted for o in self.outcomes) / len(self.outcomes)

    @property
    def expectation_met_rate(self) -> float:
        """Fraction of *admitted* requests that reached their expectation."""
        admitted = [o for o in self.outcomes if o.admitted]
        if not admitted:
            return 0.0
        return sum(o.expectation_met for o in admitted) / len(admitted)

    @property
    def mean_reliability(self) -> float:
        """Mean achieved reliability over admitted requests."""
        admitted = [o for o in self.outcomes if o.admitted]
        if not admitted:
            return 0.0
        return sum(o.reliability for o in admitted) / len(admitted)


@dataclass(frozen=True)
class JointComparison:
    """Sequential-vs-clairvoyant outcome for one request batch.

    ``sequential_*`` fields come from admitting the batch one request at a
    time with a per-request algorithm; ``joint_*`` fields from the exact
    joint ILP over the same starting snapshot.  The joint optimum is a
    feasibility superset of every arrival order, so
    ``joint_met >= sequential_met`` up to solver tolerance -- the gap is
    the *price of sequential admission*.
    """

    num_requests: int
    sequential_met: int
    joint_met: int
    sequential_mean_reliability: float
    joint_mean_reliability: float
    joint_total_credit: float


def run_joint_comparison(
    settings: ExperimentSettings,
    algorithm: AugmentationAlgorithm,
    num_requests: int,
    rng: RandomState = None,
    network: MECNetwork | None = None,
) -> JointComparison:
    """Sequential per-request augmentation vs the clairvoyant joint ILP.

    Both sides start from the same snapshot: all ``num_requests`` requests'
    primaries placed (capacity-checked) against full capacity, leaving a
    shared residual map.  The sequential side then augments request by
    request on a live ledger (earlier requests starve later ones); the
    joint side solves :func:`repro.solvers.multi.solve_joint` over the
    same residuals at once.
    """
    from repro.solvers.multi import solve_joint

    gen = as_rng(rng)
    if network is None:
        network = make_network(settings, gen)
    catalog = VNFCatalog.random(
        num_types=settings.num_vnf_types,
        demand_range=settings.demand_range,
        reliability_range=settings.reliability_range,
        rng=gen,
    )
    ledger = CapacityLedger({v: network.capacity(v) for v in network.cloudlets})

    requests = []
    placements = []
    for index in range(num_requests):
        request = make_request(settings, catalog, gen, name=f"joint-{index}")
        try:
            primaries = random_primary_placement(network, request, rng=gen, ledger=ledger)
        except InfeasibleError:
            continue  # skip requests whose primaries don't fit the snapshot
        requests.append(request)
        placements.append(primaries)
    shared_residuals = ledger.residuals()

    # One lazily-memoized neighborhood index serves every request of the
    # batch: the cloudlet-restricted sets N_l^+(v) of a primary location are
    # computed on first use and shared across requests and both sides.
    neighborhoods = network.neighborhoods(settings.radius)
    problems = [
        AugmentationProblem.build(
            network, request, primaries,
            radius=settings.radius, residuals=shared_residuals,
            neighborhoods=neighborhoods,
        )
        for request, primaries in zip(requests, placements)
    ]

    # -- sequential side ----------------------------------------------------------
    seq_ledger = CapacityLedger(shared_residuals)
    seq_met = 0
    seq_rel_sum = 0.0
    for problem in problems:
        live = AugmentationProblem.build(
            problem.network,
            problem.request,
            problem.primary_placement,
            radius=problem.radius,
            residuals=seq_ledger.residuals(),
            neighborhoods=neighborhoods,
        )
        result = algorithm.solve(live, rng=gen)
        for placement in result.solution.placements:
            seq_ledger.allocate(placement.bin, placement.demand, tag="seq")
        seq_met += int(result.expectation_met)
        seq_rel_sum += result.reliability

    # -- joint side -----------------------------------------------------------------
    joint = solve_joint(problems, residuals=shared_residuals)
    joint_met = 0
    joint_rel_sum = 0.0
    for problem, assignments in zip(problems, joint.assignments):
        solution = AugmentationSolution.from_assignments(problem, assignments)
        reliability = solution.reliability(problem)
        joint_met += int(problem.request.meets_expectation(reliability))
        joint_rel_sum += reliability

    count = max(1, len(problems))
    return JointComparison(
        num_requests=len(problems),
        sequential_met=seq_met,
        joint_met=joint_met,
        sequential_mean_reliability=seq_rel_sum / count,
        joint_mean_reliability=joint_rel_sum / count,
        joint_total_credit=joint.objective,
    )


def run_request_stream(
    settings: ExperimentSettings,
    algorithm: AugmentationAlgorithm,
    num_requests: int,
    rng: RandomState = None,
    network: MECNetwork | None = None,
) -> BatchReport:
    """Admit and augment ``num_requests`` sequentially on shared capacity.

    The stream starts from *full* cloudlet capacities (the
    ``residual_fraction`` setting is not used here -- residual capacity
    emerges from the accumulating load).  A request whose primaries cannot
    be placed is rejected and consumes nothing; augmentation placements of
    accepted requests are committed permanently.

    Commits are transactional: each request's primaries and backups form
    one ledger transaction bracketed by
    :meth:`~repro.netmodel.capacity.CapacityLedger.checkpoint` /
    :meth:`~repro.netmodel.capacity.CapacityLedger.rollback`, so a
    mid-commit :class:`~repro.util.errors.CapacityError` (an algorithm
    overshooting the residuals it was handed) rejects the request and
    leaves the ledger exactly as it was before the arrival -- no partial
    allocation can leak into later requests.

    Randomized-rounding algorithms are not suitable for the committed
    stream (their violations would corrupt the shared ledger); pass a
    feasible algorithm (Heuristic, ILP, Greedy).
    """
    gen = as_rng(rng)
    if network is None:
        network = make_network(settings, gen)
    catalog = VNFCatalog.random(
        num_types=settings.num_vnf_types,
        demand_range=settings.demand_range,
        reliability_range=settings.reliability_range,
        rng=gen,
    )
    ledger = CapacityLedger({v: network.capacity(v) for v in network.cloudlets})
    # Hoisted across the stream: each primary location's N_l^+(v) is BFS'd
    # once, on first use, and every later request reuses the memoized set.
    neighborhoods = network.neighborhoods(settings.radius)

    report = BatchReport()
    for index in range(num_requests):
        request = make_request(settings, catalog, gen, name=f"req-{index}")
        checkpoint = ledger.checkpoint()
        try:
            primaries = random_primary_placement(network, request, rng=gen, ledger=ledger)
        except InfeasibleError:
            report.outcomes.append(
                BatchRequestOutcome(
                    name=request.name,
                    admitted=False,
                    reliability=0.0,
                    expectation=request.expectation,
                    expectation_met=False,
                    backups=0,
                )
            )
            continue

        problem = AugmentationProblem.build(
            network,
            request,
            primaries,
            radius=settings.radius,
            residuals=ledger.residuals(),
            neighborhoods=neighborhoods,
        )
        result = algorithm.solve(problem, rng=gen)
        try:
            # commit the augmentation onto the shared ledger
            for placement in result.solution.placements:
                ledger.allocate(
                    placement.bin, placement.demand, tag=f"{request.name}:backup"
                )
        except CapacityError:
            # roll the whole request back -- primaries included -- so the
            # ledger is exactly as it was before this arrival
            ledger.rollback(checkpoint)
            report.outcomes.append(
                BatchRequestOutcome(
                    name=request.name,
                    admitted=False,
                    reliability=0.0,
                    expectation=request.expectation,
                    expectation_met=False,
                    backups=0,
                )
            )
            continue
        report.outcomes.append(
            BatchRequestOutcome(
                name=request.name,
                admitted=True,
                reliability=result.reliability,
                expectation=request.expectation,
                expectation_met=result.expectation_met,
                backups=result.num_backups,
            )
        )

    used = sum(ledger.used(v) for v in ledger.nodes)
    total = sum(ledger.initial(v) for v in ledger.nodes)
    report.final_utilisation = used / total if total > 0 else 0.0
    return report


# -- parallel stream ensembles ------------------------------------------------------
#
# Within one stream, every request's residual view depends on the commits of
# the requests before it -- commit order never permits parallel execution,
# so :func:`run_request_stream` is inherently serial.  Across *independent*
# streams (separate networks, separate ledgers, separate seeds) there is no
# shared state at all, which is exactly the replication an operator runs to
# estimate acceptance-rate distributions.  :func:`run_stream_ensemble`
# parallelises there, and falls back to a serial loop whenever the worker
# pool cannot be used -- with identical per-stream results either way,
# since each stream's randomness is a pre-spawned seed.


@dataclass(frozen=True)
class StreamTask:
    """One independent request stream of an ensemble, described by value.

    The classic (``REPRO_SHM=0``) work unit: when the ensemble shares a
    ``network``, every task carries its own pickled copy of it -- exactly
    the per-task redundancy the shared-memory path removes by publishing
    the network's CSR arrays once per ensemble.
    """

    settings: ExperimentSettings
    algorithm_spec: "object"  # repro.parallel.tasks.AlgorithmSpec
    num_requests: int
    seed: np.random.SeedSequence
    index: int = 0
    bit_generator: str = "PCG64"
    network: MECNetwork | None = None


def _execute_stream(task: StreamTask) -> BatchReport:
    """Worker entry point: rebuild the algorithm locally, run one stream."""
    algorithm = task.algorithm_spec.build()
    return run_request_stream(
        task.settings,
        algorithm,
        num_requests=task.num_requests,
        rng=generator_from_seed(task.seed, bit_generator=task.bit_generator),
        network=task.network,
    )


def run_stream_ensemble(
    settings: ExperimentSettings,
    algorithm: AugmentationAlgorithm,
    num_requests: int,
    streams: int = 4,
    rng: RandomState = None,
    jobs: int | None = None,
    network: MECNetwork | None = None,
) -> list[BatchReport]:
    """Run ``streams`` independent request streams, in parallel when allowed.

    Each stream draws its own catalog and arrivals from a pre-spawned
    child seed and commits onto its own ledger, so streams are
    embarrassingly parallel; results are returned in stream order and are
    bit-identical for every ``jobs`` value (including the serial fallback
    taken when ``jobs`` resolves to 1 or the algorithm cannot be shipped to
    a worker).  Aggregate the reports' acceptance/SLO rates to get
    confidence intervals the single-stream runner cannot provide.

    ``network`` pins every stream to one shared topology (capacity
    *ledgers* stay per-stream) -- the operator question "how does *my*
    network behave under many independent arrival draws".  When omitted,
    each stream draws its own topology from its seed, as before.  With
    ``REPRO_SHM=1`` a shared network crosses the process boundary once,
    as CSR arrays in a shared-memory segment, instead of once per task.
    """
    from repro.parallel import shm
    from repro.parallel.executor import resolve_jobs, shared_executor
    from repro.parallel.tasks import AlgorithmSpec

    gen = as_rng(rng)
    seeds = spawn_seed_sequences(gen, streams)
    bit_generator = type(gen.bit_generator).__name__
    num_jobs = resolve_jobs(jobs)
    spec = AlgorithmSpec.from_algorithm(algorithm) if num_jobs > 1 else None
    if spec is None:
        return [
            run_request_stream(
                settings,
                algorithm,
                num_requests=num_requests,
                rng=generator_from_seed(seed, bit_generator=bit_generator),
                network=network,
            )
            for seed in seeds
        ]
    if shm.shm_enabled():
        state = shm.publish_stream_ensemble(
            settings,
            spec,
            num_requests,
            seeds,
            bit_generator=bit_generator,
            network=network,
        )
        try:
            tasks = [shm.ShmTask(state.name, index) for index in range(streams)]
            return shared_executor(num_jobs).map_ordered(
                shm.execute_shm_stream, tasks
            )
        finally:
            state.unlink()
    tasks = [
        StreamTask(
            settings=settings,
            algorithm_spec=spec,
            num_requests=num_requests,
            seed=seed,
            index=index,
            bit_generator=bit_generator,
            network=network,
        )
        for index, seed in enumerate(seeds)
    ]
    return shared_executor(num_jobs).map_ordered(_execute_stream, tasks)
