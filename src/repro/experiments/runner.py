"""Trial execution and aggregation.

:func:`run_point` evaluates a set of algorithms on ``trials`` freshly drawn
instances of one experimental configuration -- one *data point* of a figure
-- and aggregates per-algorithm means of the reported metrics:

* achieved request reliability (panels (a));
* capacity usage ratio mean/min/max (panels (b); meaningful for the
  randomized algorithm, recorded for all);
* running time (panels (c)).

Every algorithm sees the *same* instance within a trial (the paper's
comparison is paired), and each trial gets an independent child RNG so the
sweep is reproducible from a single seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.algorithms.base import AugmentationAlgorithm
from repro.core.solution import AugmentationResult
from repro.core.validation import check_solution
from repro.experiments.settings import ExperimentSettings
from repro.experiments.workload import make_trial
from repro.util.errors import ValidationError
from repro.util.rng import RandomState, as_rng, spawn_rng


@dataclass(frozen=True)
class TrialOutcome:
    """Results of all algorithms on one shared instance."""

    results: dict[str, AugmentationResult]
    baseline_reliability: float
    expectation: float
    num_items: int


@dataclass
class AggregateStats:
    """Streaming mean aggregator for one algorithm at one data point."""

    algorithm: str
    trials: int = 0
    reliability_sum: float = 0.0
    runtime_sum: float = 0.0
    usage_mean_sum: float = 0.0
    usage_min_sum: float = 0.0
    usage_max_sum: float = 0.0
    backups_sum: int = 0
    expectation_met_count: int = 0
    violation_trials: int = 0
    _max_usage_seen: float = field(default=0.0, repr=False)

    def add(self, result: AugmentationResult) -> None:
        """Fold one trial result into the aggregate."""
        self.trials += 1
        self.reliability_sum += result.reliability
        self.runtime_sum += result.runtime_seconds
        self.usage_mean_sum += result.usage_mean
        self.usage_min_sum += result.usage_min
        self.usage_max_sum += result.usage_max
        self.backups_sum += result.num_backups
        self.expectation_met_count += int(result.expectation_met)
        self.violation_trials += int(result.has_violations)
        self._max_usage_seen = max(self._max_usage_seen, result.usage_max)

    def _mean(self, total: float) -> float:
        if self.trials == 0:
            raise ValidationError("no trials aggregated")
        return total / self.trials

    @property
    def reliability(self) -> float:
        """Mean achieved reliability across trials."""
        return self._mean(self.reliability_sum)

    @property
    def runtime(self) -> float:
        """Mean running time (seconds)."""
        return self._mean(self.runtime_sum)

    @property
    def usage(self) -> tuple[float, float, float]:
        """Mean of the per-trial (mean, min, max) usage ratios."""
        return (
            self._mean(self.usage_mean_sum),
            self._mean(self.usage_min_sum),
            self._mean(self.usage_max_sum),
        )

    @property
    def peak_usage(self) -> float:
        """Worst usage ratio observed in any trial (Thm 5.2's empirical check)."""
        return self._max_usage_seen

    @property
    def expectation_met_rate(self) -> float:
        """Fraction of trials whose expectation was reached."""
        return self._mean(float(self.expectation_met_count))

    @property
    def mean_backups(self) -> float:
        """Mean number of secondaries placed."""
        return self._mean(float(self.backups_sum))


def run_trial(
    settings: ExperimentSettings,
    algorithms: Sequence[AugmentationAlgorithm],
    rng: RandomState = None,
    validate: bool = True,
) -> TrialOutcome:
    """One shared instance, every algorithm, optional invariant validation.

    Validation re-checks each solution's feasibility (capacity violations
    are allowed -- and recorded -- only for the randomized algorithm).
    """
    gen = as_rng(rng)
    instance = make_trial(settings, rng=gen)
    problem = instance.problem
    results: dict[str, AugmentationResult] = {}
    for algorithm in algorithms:
        result = algorithm.solve(problem, rng=gen)
        if validate:
            allow = algorithm.name.startswith("Randomized")
            report = check_solution(
                problem,
                result.solution,
                allow_capacity_violation=allow,
                claimed_reliability=result.reliability,
            )
            report.raise_if_failed()
        results[algorithm.name] = result
    return TrialOutcome(
        results=results,
        baseline_reliability=problem.baseline_reliability,
        expectation=problem.request.expectation,
        num_items=problem.num_items,
    )


def run_point(
    settings: ExperimentSettings,
    algorithms: Sequence[AugmentationAlgorithm],
    trials: int | None = None,
    rng: RandomState = None,
    validate: bool = True,
) -> dict[str, AggregateStats]:
    """Aggregate ``trials`` runs into per-algorithm statistics.

    ``trials`` defaults to ``settings.effective_trials`` (which honours the
    ``REPRO_TRIALS`` environment variable).
    """
    gen = as_rng(rng)
    count = trials if trials is not None else settings.effective_trials
    stats = {a.name: AggregateStats(a.name) for a in algorithms}
    for child in spawn_rng(gen, count):
        outcome = run_trial(settings, algorithms, rng=child, validate=validate)
        for name, result in outcome.results.items():
            stats[name].add(result)
    return stats
