"""Trial execution and aggregation.

:func:`run_point` evaluates a set of algorithms on ``trials`` freshly drawn
instances of one experimental configuration -- one *data point* of a figure
-- and aggregates per-algorithm means of the reported metrics:

* achieved request reliability (panels (a));
* capacity usage ratio mean/min/max (panels (b); meaningful for the
  randomized algorithm, recorded for all);
* running time (panels (c)).

Every algorithm sees the *same* instance within a trial (the paper's
comparison is paired), and each trial gets an independent child RNG so the
sweep is reproducible from a single seed.  Within a trial, every algorithm
additionally gets its own *named* stream derived from the trial seed
(:func:`repro.util.rng.named_stream`), so a randomized algorithm's draws
never depend on how much randomness other algorithms consumed or on the
lineup order.

Execution model.  Trials are partitioned into chunks whose boundaries
depend only on the trial count; each chunk is folded into per-algorithm
partial :class:`AggregateStats` (worker-side when ``jobs > 1``, inline
otherwise) and the partials are merged in chunk order.  Because the fold
tree is a function of the trial count alone, ``run_point(..., jobs=k)``
returns bit-identical aggregates for every ``k`` -- parallelism is
invisible in the numbers.  See ``docs/parallel.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.algorithms.base import AugmentationAlgorithm
from repro.core.items import ItemGenerationConfig
from repro.core.solution import AugmentationResult
from repro.core.validation import check_solution
from repro.experiments.settings import ExperimentSettings
from repro.experiments.workload import make_trial
from repro.util.errors import ValidationError
from repro.util.rng import (
    RandomState,
    as_rng,
    derive_seed,
    named_stream,
    spawn_seed_sequences,
)


@dataclass(frozen=True)
class TrialOutcome:
    """Results of all algorithms on one shared instance."""

    results: dict[str, AugmentationResult]
    baseline_reliability: float
    expectation: float
    num_items: int


@dataclass
class AggregateStats:
    """Streaming mean aggregator for one algorithm at one data point.

    Supports two composition operations with a shared meaning: :meth:`add`
    folds one trial result in, :meth:`merge` folds another aggregate in
    (the map-reduce path of the parallel engine).  Merging partials in
    chunk order reproduces -- field for field -- the aggregate a single
    chunk-ordered fold would have produced.
    """

    algorithm: str
    trials: int = 0
    reliability_sum: float = 0.0
    runtime_sum: float = 0.0
    usage_mean_sum: float = 0.0
    usage_min_sum: float = 0.0
    usage_max_sum: float = 0.0
    backups_sum: int = 0
    expectation_met_count: int = 0
    violation_trials: int = 0
    _max_usage_seen: float = field(default=0.0, repr=False)

    def add(self, result: AugmentationResult) -> None:
        """Fold one trial result into the aggregate."""
        self.trials += 1
        self.reliability_sum += result.reliability
        self.runtime_sum += result.runtime_seconds
        self.usage_mean_sum += result.usage_mean
        self.usage_min_sum += result.usage_min
        self.usage_max_sum += result.usage_max
        self.backups_sum += result.num_backups
        self.expectation_met_count += int(result.expectation_met)
        self.violation_trials += int(result.has_violations)
        self._max_usage_seen = max(self._max_usage_seen, result.usage_max)

    def merge(self, other: "AggregateStats") -> "AggregateStats":
        """Fold another aggregate of the *same* algorithm into this one.

        Sums and counts add, the usage peak maxes; merging an empty
        aggregate (zero trials) is the identity in either direction.
        Returns ``self`` for chaining.
        """
        if other.algorithm != self.algorithm:
            raise ValidationError(
                f"cannot merge {other.algorithm!r} into {self.algorithm!r}"
            )
        self.trials += other.trials
        self.reliability_sum += other.reliability_sum
        self.runtime_sum += other.runtime_sum
        self.usage_mean_sum += other.usage_mean_sum
        self.usage_min_sum += other.usage_min_sum
        self.usage_max_sum += other.usage_max_sum
        self.backups_sum += other.backups_sum
        self.expectation_met_count += other.expectation_met_count
        self.violation_trials += other.violation_trials
        self._max_usage_seen = max(self._max_usage_seen, other._max_usage_seen)
        return self

    @classmethod
    def merged(cls, parts: Sequence["AggregateStats"]) -> "AggregateStats":
        """Left-fold ``parts`` (all of one algorithm) into a fresh aggregate."""
        if not parts:
            raise ValidationError("merged() needs at least one aggregate")
        total = cls(parts[0].algorithm)
        for part in parts:
            total.merge(part)
        return total

    def check_merge_invariant(self, parts: Sequence["AggregateStats"]) -> None:
        """Assert that this aggregate is exactly the ordered merge of ``parts``.

        The merge-consistency contract of the parallel engine: trial counts
        add, every sum field reproduces bit-for-bit, the usage peak is the
        max of the parts' peaks, and the derived means re-derive from the
        merged sums.  Raises :class:`ValidationError` on any mismatch.
        """
        remerged = AggregateStats.merged(parts) if parts else AggregateStats(self.algorithm)
        if remerged.algorithm != self.algorithm:
            raise ValidationError(
                f"parts aggregate {remerged.algorithm!r}, not {self.algorithm!r}"
            )
        if self.trials != sum(part.trials for part in parts):
            raise ValidationError(
                f"trial counts do not add: {self.trials} != "
                f"{sum(part.trials for part in parts)}"
            )
        if remerged != self:
            raise ValidationError(
                f"ordered re-merge of parts does not reproduce the aggregate: "
                f"{remerged!r} != {self!r}"
            )
        if self.trials > 0 and self.reliability != self.reliability_sum / self.trials:
            raise ValidationError("mean does not re-derive from merged sums")

    def _mean(self, total: float) -> float:
        if self.trials == 0:
            raise ValidationError("no trials aggregated")
        return total / self.trials

    @property
    def reliability(self) -> float:
        """Mean achieved reliability across trials."""
        return self._mean(self.reliability_sum)

    @property
    def runtime(self) -> float:
        """Mean running time (seconds)."""
        return self._mean(self.runtime_sum)

    @property
    def usage(self) -> tuple[float, float, float]:
        """Mean of the per-trial (mean, min, max) usage ratios."""
        return (
            self._mean(self.usage_mean_sum),
            self._mean(self.usage_min_sum),
            self._mean(self.usage_max_sum),
        )

    @property
    def peak_usage(self) -> float:
        """Worst usage ratio observed in any trial (Thm 5.2's empirical check)."""
        return self._max_usage_seen

    @property
    def expectation_met_rate(self) -> float:
        """Fraction of trials whose expectation was reached."""
        return self._mean(float(self.expectation_met_count))

    @property
    def mean_backups(self) -> float:
        """Mean number of secondaries placed."""
        return self._mean(float(self.backups_sum))


def run_trial(
    settings: ExperimentSettings,
    algorithms: Sequence[AugmentationAlgorithm],
    rng: RandomState = None,
    validate: bool = True,
    item_config: ItemGenerationConfig | None = None,
) -> TrialOutcome:
    """One shared instance, every algorithm, optional invariant validation.

    The instance is drawn from ``rng``; each algorithm then solves it with
    its own stream, ``named_stream(trial_seed, algorithm.name)``, where the
    trial seed is one draw from ``rng`` after instance generation.  Adding,
    removing, or reordering algorithms therefore cannot change any other
    algorithm's draws -- paired comparisons stay paired across lineups, and
    worker processes reconstruct the exact streams from the trial seed.

    Validation re-checks each solution's feasibility (capacity violations
    are allowed -- and recorded -- only for the randomized algorithm).
    """
    gen = as_rng(rng)
    instance = make_trial(settings, rng=gen, item_config=item_config)
    problem = instance.problem
    algorithm_seed = derive_seed(gen)
    results: dict[str, AugmentationResult] = {}
    for algorithm in algorithms:
        result = algorithm.solve(
            problem, rng=named_stream(algorithm_seed, algorithm.name)
        )
        if validate:
            allow = algorithm.name.startswith("Randomized")
            report = check_solution(
                problem,
                result.solution,
                allow_capacity_violation=allow,
                claimed_reliability=result.reliability,
            )
            report.raise_if_failed()
        results[algorithm.name] = result
    return TrialOutcome(
        results=results,
        baseline_reliability=problem.baseline_reliability,
        expectation=problem.request.expectation,
        num_items=problem.num_items,
    )


def run_point(
    settings: ExperimentSettings,
    algorithms: Sequence[AugmentationAlgorithm],
    trials: int | None = None,
    rng: RandomState = None,
    validate: bool = True,
    jobs: int | None = None,
    chunk_size: int | None = None,
    item_config: ItemGenerationConfig | None = None,
) -> dict[str, AggregateStats]:
    """Aggregate ``trials`` runs into per-algorithm statistics.

    ``trials`` defaults to ``settings.effective_trials`` (which honours the
    ``REPRO_TRIALS`` environment variable).

    Parameters
    ----------
    jobs:
        Worker processes.  ``None`` honours ``REPRO_JOBS`` and otherwise
        runs serially; ``0`` auto-detects (CPU count); ``n`` uses exactly
        ``n``.  **The returned aggregates are bit-identical for every
        value** -- chunk boundaries and fold order depend only on the trial
        count, per-trial seeds are pre-spawned, and each algorithm draws
        from its own named stream.
    chunk_size:
        Trials per chunk (default: derived from the trial count alone via
        :func:`repro.parallel.executor.default_chunk_size`).  Override only
        for tuning; keep it fixed when comparing runs bit-for-bit.
    item_config:
        Optional item-generation override forwarded to every trial (used
        by the truncation ablation).
    """
    from repro.parallel import shm
    from repro.parallel.executor import (
        chunk_indices,
        default_chunk_size,
        resolve_jobs,
        shared_executor,
    )
    from repro.parallel.tasks import ChunkTask, execute_chunk, fold_chunk, specs_for

    gen = as_rng(rng)
    count = trials if trials is not None else settings.effective_trials
    seeds = spawn_seed_sequences(gen, count)
    bit_generator = type(gen.bit_generator).__name__
    size = chunk_size if chunk_size is not None else default_chunk_size(count)
    bounds = chunk_indices(count, size)

    num_jobs = resolve_jobs(jobs)
    specs = None
    if num_jobs > 1 and len(bounds) > 1:
        specs = specs_for(algorithms)

    if specs is None:
        partials = [
            fold_chunk(
                settings,
                algorithms,
                seeds[start:stop],
                bit_generator=bit_generator,
                validate=validate,
                item_config=item_config,
            )
            for start, stop in bounds
        ]
    elif shm.shm_enabled():
        # Zero-pickle path: the shared state (settings, specs, seed table)
        # crosses the process boundary once, in a named shared-memory
        # segment; each task pickles to ~60 bytes of (segment, index).
        # Chunk boundaries are index * size -- the same bounds as above --
        # so the fold tree is unchanged and the numbers are bit-identical.
        state = shm.publish_sweep(
            settings,
            specs,
            seeds,
            chunk_size=size,
            bit_generator=bit_generator,
            validate=validate,
            item_config=item_config,
        )
        try:
            tasks = [shm.ShmTask(state.name, index) for index in range(len(bounds))]
            partials = shared_executor(num_jobs).map_ordered(
                shm.execute_shm_chunk, tasks
            )
        finally:
            state.unlink()
    else:
        chunks = [
            ChunkTask(
                settings=settings,
                algorithms=specs,
                seeds=tuple(seeds[start:stop]),
                index=index,
                bit_generator=bit_generator,
                validate=validate,
                item_config=item_config,
            )
            for index, (start, stop) in enumerate(bounds)
        ]
        partials = shared_executor(num_jobs).map_ordered(execute_chunk, chunks)

    stats = {a.name: AggregateStats(a.name) for a in algorithms}
    for partial in partials:
        for name, aggregate in stats.items():
            aggregate.merge(partial[name])
    return stats
