"""Dual-reusing sparse assignment solver for Algorithm 2's round sequence.

Consecutive rounds of the matching heuristic solve *almost the same*
min-cost maximum matching: round ``l + 1`` differs from round ``l`` only by
the deltas :class:`repro.matching.incremental.RoundState` already tracks --
matched items leave the right side, and cloudlets whose residual crossed a
``c(f_i)`` threshold lose their edges.  A from-scratch solve forgets
everything it learned about the cost geometry; this module keeps it.

:class:`DualReusingSolver` is a successive-shortest-augmenting-path solver
(Jonker-Volgenant style, like :mod:`repro.matching.hungarian` -- but on the
CSR edge set instead of a padded dense matrix) whose dual potentials
*persist across rounds*:

* ``u`` is keyed by **global cloudlet id** and ``v`` by **global item
  index**, so the round-local row/column compaction of
  :meth:`RoundState.build_edges` can shrink freely between rounds;
* max cardinality is encoded sparsely: each row owns one implicit dummy
  column of cost ``B`` (its potential also persists), where ``B`` is
  derived once from the *whole edge universe* so it stays constant -- and
  dominating -- for every round of the solve;
* because Algorithm 2 only ever *removes* edges within a solve (residuals
  decrease monotonically, matched items leave), dual feasibility
  ``c_ij - u_i - v_j >= 0`` for round ``l``'s edges implies feasibility for
  round ``l + 1``'s subset.  Round ``l``'s duals are therefore a valid --
  and usually nearly tight -- starting point, and the Dijkstra sweeps of
  round ``l + 1`` terminate after a few pops instead of re-deriving the
  whole potential landscape from zero.

Scratch vectors (``dist``/``pred``/``scanned`` and the persistent dual
arrays) are leased from the per-thread
:class:`repro.kernels.arena.MatrixArena` when one is supplied, so a request
stream re-solves thousands of rounds without re-allocating; every leased
element is (re)initialised before use, so arena solves are bit-identical to
``arena=None`` solves.

Exactness contract: every round returns a maximum-cardinality matching of
minimum total cost (warm duals change the *path* to the optimum, never the
optimum itself -- they are a feasible starting potential, exactly as the
zero vector is).  The returned pairing is a deterministic function of the
round-graph sequence: fixed row insertion order, first-index ``argmin``
tie-breaks, real columns scanned before dummy columns.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.util.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernels.arena import MatrixArena


class DualReusingSolver:
    """Warm-started min-cost maximum matching over a shrinking round sequence.

    Parameters
    ----------
    node_space:
        Exclusive upper bound on global cloudlet ids (row dual vector size).
    item_space:
        Number of items in the problem (column dual vector size).
    universe_cost_sum:
        Sum of every edge cost in the *static edge universe* of the solve.
        The dummy-column cost ``B = universe_cost_sum + 1`` must dominate
        the real cost of any round's matching and must not change between
        rounds (a shrinking ``B`` could break dual feasibility on the
        dummy edges), so it is derived from the universe, not per round.
    arena:
        Optional :class:`repro.kernels.arena.MatrixArena` to lease the dual
        and scratch vectors from (must be this thread's arena -- see the
        locality contract in ``docs/performance.md``).

    Notes
    -----
    The duals start at zero, and that is load-bearing: this is the
    *unbalanced* assignment LP (columns may stay unmatched), whose dual
    constrains free-column potentials to ``v_j <= 0``.  The classic JV
    column reduction ``v_j = min_i c_ij`` violates that sign constraint
    for any positive cost and silently trades cost optimality away (the
    cardinality stays maximum, but the solver may augment to an arbitrary
    reachable column instead of the cheapest).  Zero-started potentials
    only ever *decrease* on columns (and popped columns are matched
    columns), so ``v_j <= 0`` with equality on free columns holds for the
    whole round sequence -- complementary slackness, hence exactness.
    """

    __slots__ = ("_big", "_u", "_v", "_vd", "_dist", "_pred", "_scanned")

    def __init__(
        self,
        node_space: int,
        item_space: int,
        universe_cost_sum: float,
        arena: "MatrixArena | None" = None,
    ) -> None:
        if node_space < 0 or item_space < 0:
            raise ValidationError(
                f"negative dual space: {node_space} nodes, {item_space} items"
            )
        big = float(universe_cost_sum) + 1.0
        if not np.isfinite(big) or big <= universe_cost_sum:
            raise ValidationError(
                "universe cost sum too large for a dominating dummy cost "
                f"(sum={universe_cost_sum!r})"
            )
        self._big = big
        width = item_space + node_space  # real columns then one dummy per row id
        if arena is not None:
            self._u = arena.take("warm_u", node_space, np.float64)
            self._v = arena.take("warm_v", item_space, np.float64)
            self._vd = arena.take("warm_vd", node_space, np.float64)
            self._dist = arena.take("warm_dist", width, np.float64)
            self._pred = arena.take("warm_pred", width, np.intp)
            self._scanned = arena.take("warm_scanned", width, bool)
        else:
            self._u = np.empty(node_space, dtype=np.float64)
            self._v = np.empty(item_space, dtype=np.float64)
            self._vd = np.empty(node_space, dtype=np.float64)
            self._dist = np.empty(width, dtype=np.float64)
            self._pred = np.empty(width, dtype=np.intp)
            self._scanned = np.empty(width, dtype=bool)
        self._u[:] = 0.0
        self._v[:] = 0.0
        self._vd[:] = 0.0

    def solve_round(
        self,
        rows: Sequence[int],
        cols: np.ndarray,
        edge_rows: np.ndarray,
        edge_cols: np.ndarray,
        edge_costs: Sequence[float],
    ) -> list[tuple[int, int, float]]:
        """Solve one round's matching, reusing the previous round's duals.

        Parameters
        ----------
        rows:
            Global cloudlet ids of the round's left nodes (the duals are
            gathered/scattered through these ids).
        cols:
            Global item indices of the round's right nodes.
        edge_rows, edge_cols, edge_costs:
            The round's edges in *round-local* indices (the exact arrays
            :meth:`RoundState.build_edges` emits).  Costs must be
            non-negative -- the zero dual start of the first round is only
            feasible then (Algorithm 2's Eq. 3 costs always are).

        Returns
        -------
        list[tuple[int, int, float]]
            Matched ``(local_row, local_col, cost)`` triples sorted by row;
            maximum cardinality, minimum total cost among maximum matchings.
        """
        n, m = len(rows), len(cols)
        costs = np.asarray(edge_costs, dtype=np.float64)
        if n == 0 or m == 0 or costs.size == 0:
            return []
        if costs.min() < 0.0:
            raise ValidationError(
                "warm-started rounds require non-negative costs "
                "(shift them, as the cold entry point does)"
            )
        erow = np.asarray(edge_rows, dtype=np.intp)
        ecol = np.asarray(edge_cols, dtype=np.intp)

        # Row-major CSR with ascending columns inside each row -- the
        # deterministic layout every tie-break below is defined against.
        order = np.lexsort((ecol, erow))
        csr_cols = ecol[order]
        csr_costs = costs[order]
        counts = np.bincount(erow, minlength=n)
        indptr = np.empty(n + 1, dtype=np.intp)
        indptr[0] = 0
        np.cumsum(counts, out=indptr[1:])

        rows_idx = np.asarray(rows, dtype=np.intp)
        cols_idx = np.asarray(cols, dtype=np.intp)
        # Local dual views: u per local row; v_local packs the real columns
        # first, then row r's dummy column at index m + r.
        u = self._u[rows_idx].copy()
        v_local = np.concatenate([self._v[cols_idx], self._vd[rows_idx]])
        big = self._big

        width = m + n
        dist = self._dist[:width]
        pred = self._pred[:width]
        scanned = self._scanned[:width]
        INF = np.inf
        row4col = np.full(width, -1, dtype=np.intp)
        col4row = np.full(n, -1, dtype=np.intp)

        popped_cols: list[int] = []
        popped_dist: list[float] = []
        for cur_row in range(n):
            dist.fill(INF)
            pred.fill(-1)
            scanned.fill(False)
            popped_cols.clear()
            popped_dist.clear()
            i = cur_row
            offset = 0.0
            while True:
                # Relax row i's real edges (vectorised over its CSR slice)
                # and its private dummy edge.  Strict ``<`` keeps the first
                # (lowest-offset) predecessor on ties.
                lo, hi = indptr[i], indptr[i + 1]
                if hi > lo:
                    nbr = csr_cols[lo:hi]
                    cand = offset + (csr_costs[lo:hi] - u[i] - v_local[nbr])
                    better = ~scanned[nbr] & (cand < dist[nbr])
                    improved = nbr[better]
                    dist[improved] = cand[better]
                    pred[improved] = i
                dummy = m + i
                if not scanned[dummy]:
                    cand_d = offset + (big - u[i] - v_local[dummy])
                    if cand_d < dist[dummy]:
                        dist[dummy] = cand_d
                        pred[dummy] = i
                # Pop the closest unscanned column; popped entries are reset
                # to inf in `dist` (their true distance lives in popped_dist)
                # so the argmin needs no per-pop masking copy.  argmin's
                # first-index rule makes ties deterministic (real columns
                # sit before dummy columns in the local layout).
                j = int(np.argmin(dist))
                closest = float(dist[j])
                if closest == INF:  # pragma: no cover - dummy edges guarantee progress
                    raise ValidationError("augmentation stalled (no reachable column)")
                scanned[j] = True
                dist[j] = INF
                if row4col[j] < 0:
                    sink, minval = j, closest
                    break
                popped_cols.append(j)
                popped_dist.append(closest)
                i = int(row4col[j])
                offset = closest

            # Dual update: scanned columns (and their matched rows) shift by
            # their distance shortfall; the inserted row absorbs the full
            # path length.  Matched edges stay tight, feasibility is kept.
            if popped_cols:
                sel = np.asarray(popped_cols, dtype=np.intp)
                delta = minval - np.asarray(popped_dist)
                v_local[sel] -= delta
                u[row4col[sel]] += delta
            u[cur_row] += minval

            # Augment: flip the alternating path back to the inserted row.
            j = sink
            while True:
                i = int(pred[j])
                row4col[j] = i
                col4row[i], j = j, col4row[i]
                if i == cur_row:
                    break

        # Persist the improved potentials for the next round.
        self._u[rows_idx] = u
        self._v[cols_idx] = v_local[:m]
        self._vd[rows_idx] = v_local[m:]

        matched: list[tuple[int, int, float]] = []
        for i in range(n):
            j = int(col4row[i])
            if j < m:  # dummy-matched rows are unmatched
                lo = int(indptr[i])
                pos = lo + int(
                    np.searchsorted(csr_cols[lo : int(indptr[i + 1])], j)
                )
                matched.append((i, j, float(csr_costs[pos])))
        return matched


def warm_min_cost_max_matching(
    n_rows: int,
    n_cols: int,
    edge_rows: np.ndarray,
    edge_cols: np.ndarray,
    edge_costs: np.ndarray,
) -> list[tuple[int, int, float]]:
    """Cold single-shot entry point for the warm-started solver.

    Used by the generic :func:`repro.matching.mincost.min_cost_max_matching`
    interface (and by tests) when no round sequence exists to carry duals
    across.  Negative costs are handled by a uniform shift -- it adds
    ``k * shift`` to every cardinality-``k`` matching, leaving the set of
    min-cost maximum matchings unchanged -- and decoded edges report the
    original cost floats.
    """
    costs = np.asarray(edge_costs, dtype=np.float64)
    if n_rows == 0 or n_cols == 0 or costs.size == 0:
        return []
    low = float(costs.min())
    shift = -low if low < 0.0 else 0.0
    shifted = costs + shift if shift else costs
    solver = DualReusingSolver(n_rows, n_cols, universe_cost_sum=float(shifted.sum()))
    matched = solver.solve_round(
        np.arange(n_rows, dtype=np.intp),
        np.arange(n_cols, dtype=np.intp),
        edge_rows,
        edge_cols,
        shifted,
    )
    if not shift:
        return matched
    # Recover original costs by edge identity (never unshift by arithmetic).
    rows = np.asarray(edge_rows, dtype=np.intp)
    cols = np.asarray(edge_cols, dtype=np.intp)
    keys = rows * n_cols + cols
    key_order = np.argsort(keys, kind="stable")
    sorted_keys = keys[key_order]
    out = []
    for r, c, _ in matched:
        pos = key_order[int(np.searchsorted(sorted_keys, r * n_cols + c))]
        out.append((r, c, float(costs[pos])))
    return out


__all__ = ["DualReusingSolver", "warm_min_cost_max_matching"]
