"""Dual-reusing incremental LAP core for Algorithm 2's round sequence.

Consecutive rounds of the matching heuristic solve *almost the same*
min-cost maximum matching: round ``l + 1`` differs from round ``l`` only by
the deltas :class:`repro.matching.incremental.RoundState` already tracks --
matched items leave the right side, and cloudlets whose residual crossed a
``c(f_i)`` threshold lose their edges.  A from-scratch solve forgets
everything it learned about the cost geometry; this module keeps it.

:class:`DualReusingSolver` is a successive-shortest-augmenting-path solver
(Jonker-Volgenant style, like :mod:`repro.matching.hungarian` -- but on the
CSR edge set instead of a padded dense matrix) with two layers of
cross-round state:

* **Persistent duals** -- ``u`` is keyed by **global cloudlet id** and
  ``v`` by **global item index**, so the round-local row/column compaction
  of :meth:`RoundState.build_edges` can shrink freely between rounds.
  Because Algorithm 2 only ever *removes* edges within a solve (residuals
  decrease monotonically, matched items leave), dual feasibility
  ``c_ij - u_i - v_j >= 0`` for round ``l``'s edges implies feasibility
  for round ``l + 1``'s subset; round ``l``'s duals are a valid -- and
  usually nearly tight -- starting point for round ``l + 1``.
* **Persistent matching** (:meth:`DualReusingSolver.solve_round_delta`) --
  ``row4col``/``col4row`` survive next to the duals, also keyed by global
  ids.  At the start of a delta round the solver *reconciles* the stored
  matching with the new graph: a pair whose item is still present and
  whose edge still exists stays matched (its edge was tight under the
  stored duals and neither the duals nor the edge cost changed, so
  complementary slackness still holds); a row matched to its dummy stays
  dummy-matched (dummy edges never disappear); every other row is an
  *orphan* and is re-augmented by one shortest augmenting path.  Feasible
  duals + tight kept pairs + zero potential on every free column is
  exactly the JV invariant, so every delta round is still an exact
  min-cost maximum matching -- the delta only changes *how much work* the
  round does, typically re-augmenting a handful of rows instead of all of
  them.  Rounds that *grow* the graph (items or edges returning, rows
  resurrecting -- the online re-solve workload) can break the invariant;
  a two-stage repair restores it in place.  Before the sweep, *free*
  rows whose dual feasibility the new edges violate get ``u`` cut to
  their cheapest raw edge cost (they were due for re-augmentation
  anyway), and columns priced too high by matched rows get their
  potential lowered to the largest feasible value -- releasing a matched
  row is reserved for the rare new-edge-between-matched-endpoints case,
  because every release is a full re-augmentation.  After the sweep,
  each column still free with stale negative potential is re-admitted by
  a dynamic-Hungarian *column insertion* (one reverse Dijkstra rooted at
  the column that either matches it or proves the dual ascent to
  ``v = 0`` feasible -- see :meth:`DualReusingSolver._insert_column`;
  ``dual_repairs`` counts the insertions).  The exactness contract
  therefore holds for **arbitrary** round sequences, not just
  Algorithm 2's shrink-only ones.

Two sweep engines drive the augmentation (``REPRO_WARM_SWEEP``):

* ``"heap"`` (default): a vectorised *prepass* computes every orphan row's
  cheapest reduced-cost column in one shot; a row whose cached candidate
  is still clean (no popped column's ``v`` changed underneath it -- ``v``
  only ever falls, so other candidates can only have got *worse*) and
  still free is matched in O(1) -- the "dual-tightness hit".  Rows that
  miss run a full Dijkstra whose frontier is a lazy-deletion binary
  heap, so a pop costs ``O(log f)`` instead of the old ``O(width)``
  full-array ``argmin``.
* ``"scan"``: the original full-array ``argmin`` sweep, kept verbatim
  (apart from a pop counter) as the differential reference.

The two engines are bit-identical by construction: the heap's estimates
are the exact floats the scan computes (same ``offset + ((cost - u_i) -
v_j)`` associativity), heap ties order by ``(value, column)`` which
reproduces ``argmin``'s first-index rule, and pushes mirror the scan's
strict-``<`` relaxation so the popped entry's predecessor is always the
scan's.  ``tests/test_matching_warm_delta.py`` asserts the equivalence
pair-for-pair on random round sequences.

Scratch vectors and both persistent layers are leased from the per-thread
:class:`repro.kernels.arena.MatrixArena` when one is supplied (``warm_*``
for duals and Dijkstra scratch, ``warm_match_*`` for the persistent
matching, round-local pairing, universe mask and index maps), so a request
stream re-solves thousands of rounds without re-allocating; every leased
element is (re)initialised before use, so arena solves are bit-identical
to ``arena=None`` solves.

A :class:`UniverseIndex` (built once per problem/node-order by
:func:`repro.matching.incremental.warm_solver_for`) presorts the *static
edge universe* into CSR order; a delta round that passes ``edge_idx`` (the
universe positions of its live edges, which ``RoundState.build_edges``
already computes) derives its CSR layout by an O(E) boolean filter of the
presort instead of an O(E log E) per-round ``lexsort`` -- the single
largest constant-factor win on the replay workload.

Exactness contract: every round returns a maximum-cardinality matching of
minimum total cost (warm duals and kept pairs change the *path* to the
optimum, never the optimum itself).  The returned pairing is a
deterministic function of the round-graph sequence and the solver's mode:
fixed row insertion order, first-index ``argmin`` tie-breaks, real columns
scanned before dummy columns.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.util.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernels.arena import MatrixArena

#: Sentinel in the persistent matching: "matched to the row's private dummy
#: column" (distinct from -1, "not matched in any prior round / orphaned").
DUMMY = -2

#: Sweep engine switch: ``"heap"`` (default) or ``"scan"`` (the verbatim
#: full-array argmin reference).
WARM_SWEEP_ENV = "REPRO_WARM_SWEEP"

#: Delta-path switch for the round engines: ``"0"`` forces cold per-round
#: solves through :meth:`DualReusingSolver.solve_round`; anything else (or
#: unset) lets them call :meth:`DualReusingSolver.solve_round_delta`.
WARM_DELTA_ENV = "REPRO_WARM_DELTA"

_SWEEP_MODES = ("heap", "scan")


def sweep_mode() -> str:
    """The active sweep engine, from ``REPRO_WARM_SWEEP`` (default ``"heap"``)."""
    raw = os.environ.get(WARM_SWEEP_ENV)
    if raw is None or not raw.strip():
        return "heap"
    mode = raw.strip().lower()
    if mode not in _SWEEP_MODES:
        raise ValidationError(
            f"unknown {WARM_SWEEP_ENV} value {raw!r}; choose one of {_SWEEP_MODES}"
        )
    return mode


def warm_delta_enabled() -> bool:
    """Whether the round engines should use the delta re-solve path.

    ``REPRO_WARM_DELTA=0`` disables it (cold per-round solves); unset or any
    other value enables it.  Read at solve time so sweeps, the resilience
    stream, and the fallback chain inherit one switch.
    """
    return os.environ.get(WARM_DELTA_ENV, "1").strip() != "0"


class WarmStats:
    """Introspection counters for one :class:`DualReusingSolver`.

    Cumulative over the solver's lifetime (one Algorithm 2 solve when
    constructed through ``warm_solver_for``); :meth:`reset` rewinds them.
    ``rows_kept`` + ``rows_reaugmented`` = ``rows_total``, and re-augmented
    rows split into ``quick_matches`` (the prepass matched them in O(1)
    because their cached cheapest column was still tight and free) and rows
    that ran a full Dijkstra (``heap_pops``/``scan_pops`` count its column
    pops, the unit of sweep work).
    """

    __slots__ = (
        "rounds",
        "delta_rounds",
        "rows_total",
        "rows_kept",
        "rows_reaugmented",
        "quick_matches",
        "heap_pops",
        "scan_pops",
        "dual_repairs",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        self.rounds = 0
        self.delta_rounds = 0
        self.rows_total = 0
        self.rows_kept = 0
        self.rows_reaugmented = 0
        self.quick_matches = 0
        self.heap_pops = 0
        self.scan_pops = 0
        self.dual_repairs = 0

    @property
    def tightness_hit_rate(self) -> float:
        """Fraction of re-augmented rows the prepass matched in O(1)."""
        if self.rows_reaugmented == 0:
            return 0.0
        return self.quick_matches / self.rows_reaugmented

    def as_dict(self) -> dict[str, float]:
        """A plain-dict snapshot (for benchmarks and reports)."""
        return {
            "rounds": self.rounds,
            "delta_rounds": self.delta_rounds,
            "rows_total": self.rows_total,
            "rows_kept": self.rows_kept,
            "rows_reaugmented": self.rows_reaugmented,
            "quick_matches": self.quick_matches,
            "heap_pops": self.heap_pops,
            "scan_pops": self.scan_pops,
            "dual_repairs": self.dual_repairs,
            "tightness_hit_rate": self.tightness_hit_rate,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"WarmStats({inner})"


class UniverseIndex:
    """CSR presort of a problem's static edge universe for one node order.

    ``order`` sorts the universe by ``(ledger rank of node, item index)``.
    Any round whose rows are the positive-residual nodes *in ledger order*
    and whose columns are the alive items *in index order* (exactly what
    both round engines produce) can therefore derive its row-major /
    ascending-column CSR layout by filtering ``order`` with the round's
    live-edge mask -- bit-identical to ``np.lexsort((ecol, erow))`` on the
    round-local arrays, because the universe keys are unique per
    ``(node, item)`` pair and both local indexings are monotone in the
    global ones.
    """

    __slots__ = ("edge_node", "edge_item", "edge_cost", "order")

    def __init__(
        self,
        edge_node: np.ndarray,
        edge_item: np.ndarray,
        edge_cost: np.ndarray,
        node_order: Sequence[int],
    ) -> None:
        self.edge_node = np.asarray(edge_node, dtype=np.intp)
        self.edge_item = np.asarray(edge_item, dtype=np.intp)
        self.edge_cost = np.asarray(edge_cost, dtype=np.float64)
        if not (
            self.edge_node.size == self.edge_item.size == self.edge_cost.size
        ):
            raise ValidationError(
                "universe arrays must be parallel: "
                f"{self.edge_node.size} nodes, {self.edge_item.size} items, "
                f"{self.edge_cost.size} costs"
            )
        nodes = np.asarray(list(node_order), dtype=np.intp)
        if nodes.size and int(nodes.min()) < 0:
            raise ValidationError("negative cloudlet id in node_order")
        if self.edge_node.size and int(self.edge_node.min()) < 0:
            raise ValidationError("negative cloudlet id in edge_node")
        hi = 0
        if nodes.size:
            hi = max(hi, int(nodes.max()) + 1)
        if self.edge_node.size:
            hi = max(hi, int(self.edge_node.max()) + 1)
        # Nodes outside the ledger order sort last (rank = hi); their edges
        # can never be live in a round, so the tail order is irrelevant.
        rank = np.full(hi, hi, dtype=np.intp)
        rank[nodes] = np.arange(nodes.size, dtype=np.intp)
        self.order = np.lexsort((self.edge_item, rank[self.edge_node]))

    @property
    def n_edges(self) -> int:
        """Number of edges in the universe."""
        return int(self.edge_cost.size)


class DualReusingSolver:
    """Warm-started min-cost maximum matching over a shrinking round sequence.

    Parameters
    ----------
    node_space:
        Exclusive upper bound on global cloudlet ids (row dual vector size).
    item_space:
        Number of items in the problem (column dual vector size).
    universe_cost_sum:
        Sum of every edge cost in the *static edge universe* of the solve.
        The dummy-column cost ``B = universe_cost_sum + 1`` must dominate
        the real cost of any round's matching and must not change between
        rounds (a shrinking ``B`` could break dual feasibility on the
        dummy edges), so it is derived from the universe, not per round.
    arena:
        Optional :class:`repro.kernels.arena.MatrixArena` to lease the dual
        and scratch vectors from (must be this thread's arena -- see the
        locality contract in ``docs/performance.md``).  Arena buffers are
        name-keyed, and the warm leases (``warm_u`` .. ``warm_match_*``)
        hold state that *persists across rounds* -- so at most one live
        arena-backed solver per arena; a successor solver on the same
        arena reuses (and reinitialises) the same memory.
    universe:
        Optional :class:`UniverseIndex` enabling the ``edge_idx`` fast path
        of :meth:`solve_round_delta` (CSR by presort filtering instead of a
        per-round ``lexsort``).

    Notes
    -----
    The duals start at zero, and that is load-bearing: this is the
    *unbalanced* assignment LP (columns may stay unmatched), whose dual
    constrains free-column potentials to ``v_j <= 0``.  The classic JV
    column reduction ``v_j = min_i c_ij`` violates that sign constraint
    for any positive cost and silently trades cost optimality away (the
    cardinality stays maximum, but the solver may augment to an arbitrary
    reachable column instead of the cheapest).  Zero-started potentials
    only ever *decrease* on columns (and popped columns are matched
    columns), so ``v_j <= 0`` with equality on free columns holds for the
    whole round sequence -- complementary slackness, hence exactness.
    """

    __slots__ = (
        "_big",
        "_u",
        "_v",
        "_vd",
        "_dist",
        "_pred",
        "_scanned",
        "_arena",
        "_universe",
        "_node_space",
        "_item_space",
        "_g_col4row",
        "_g_row4col",
        "stats",
    )

    def __init__(
        self,
        node_space: int,
        item_space: int,
        universe_cost_sum: float,
        arena: "MatrixArena | None" = None,
        universe: UniverseIndex | None = None,
    ) -> None:
        if node_space < 0 or item_space < 0:
            raise ValidationError(
                f"negative dual space: {node_space} nodes, {item_space} items"
            )
        big = float(universe_cost_sum) + 1.0
        if not np.isfinite(big) or big <= universe_cost_sum:
            raise ValidationError(
                "universe cost sum too large for a dominating dummy cost "
                f"(sum={universe_cost_sum!r})"
            )
        if universe is not None:
            if universe.edge_node.size and int(universe.edge_node.max()) >= node_space:
                raise ValidationError(
                    f"universe node id {int(universe.edge_node.max())} outside "
                    f"node space {node_space}"
                )
            if universe.edge_item.size and int(universe.edge_item.max()) >= item_space:
                raise ValidationError(
                    f"universe item index {int(universe.edge_item.max())} outside "
                    f"item space {item_space}"
                )
        self._big = big
        self._arena = arena
        self._universe = universe
        self._node_space = node_space
        self._item_space = item_space
        self.stats = WarmStats()
        width = item_space + node_space  # real columns then one dummy per row id
        if arena is not None:
            self._u = arena.take("warm_u", node_space, np.float64)
            self._v = arena.take("warm_v", item_space, np.float64)
            self._vd = arena.take("warm_vd", node_space, np.float64)
            self._dist = arena.take("warm_dist", width, np.float64)
            self._pred = arena.take("warm_pred", width, np.intp)
            self._scanned = arena.take("warm_scanned", width, bool)
            self._g_col4row = arena.take("warm_match_col4row", node_space, np.intp)
            self._g_row4col = arena.take("warm_match_row4col", item_space, np.intp)
        else:
            self._u = np.empty(node_space, dtype=np.float64)
            self._v = np.empty(item_space, dtype=np.float64)
            self._vd = np.empty(node_space, dtype=np.float64)
            self._dist = np.empty(width, dtype=np.float64)
            self._pred = np.empty(width, dtype=np.intp)
            self._scanned = np.empty(width, dtype=bool)
            self._g_col4row = np.empty(node_space, dtype=np.intp)
            self._g_row4col = np.empty(item_space, dtype=np.intp)
        self._u[:] = 0.0
        self._v[:] = 0.0
        self._vd[:] = 0.0
        self._g_col4row.fill(-1)
        self._g_row4col.fill(-1)

    # -- round construction ---------------------------------------------------
    def _build_round(
        self,
        rows: Sequence[int],
        cols: np.ndarray,
        edge_rows: np.ndarray,
        edge_cols: np.ndarray,
        edge_costs: Sequence[float],
        edge_idx: np.ndarray | None = None,
    ):
        """Validate one round's inputs and build its CSR + local duals.

        Returns ``None`` for an empty round, else the tuple
        ``(n, m, rows_idx, cols_idx, csr_erow, csr_cols, csr_costs, indptr,
        flat_keys, u, v_local)`` where ``flat_keys = csr_erow * m + csr_cols``
        is strictly ascending (the CSR layout sorts by ``(row, col)`` and
        pairs are unique), enabling batched membership tests.
        """
        n, m = len(rows), len(cols)
        costs = np.asarray(edge_costs, dtype=np.float64)
        if n == 0 or m == 0 or costs.size == 0:
            return None
        if costs.min() < 0.0:
            raise ValidationError(
                "warm-started rounds require non-negative costs "
                "(shift them, as the cold entry point does)"
            )
        erow = np.asarray(edge_rows, dtype=np.intp)
        ecol = np.asarray(edge_cols, dtype=np.intp)
        if erow.size != costs.size or ecol.size != costs.size:
            raise ValidationError(
                "edge arrays must be parallel: "
                f"{erow.size} rows, {ecol.size} cols, {costs.size} costs"
            )
        # Out-of-range indices would otherwise reach np.bincount / fancy
        # indexing (negative indices silently alias!) with opaque errors.
        rmin, rmax = int(erow.min()), int(erow.max())
        if rmin < 0 or rmax >= n:
            raise ValidationError(
                f"edge_rows out of range [0, {n}): min {rmin}, max {rmax}"
            )
        cmin, cmax = int(ecol.min()), int(ecol.max())
        if cmin < 0 or cmax >= m:
            raise ValidationError(
                f"edge_cols out of range [0, {m}): min {cmin}, max {cmax}"
            )
        rows_idx = np.asarray(rows, dtype=np.intp)
        cols_idx = np.asarray(cols, dtype=np.intp)
        if edge_idx is not None and self._universe is not None:
            csr_erow, csr_cols, csr_costs = self._csr_from_universe(
                n, m, rows_idx, cols_idx, edge_idx, costs.size
            )
        else:
            # Row-major CSR with ascending columns inside each row -- the
            # deterministic layout every tie-break below is defined against.
            order = np.lexsort((ecol, erow))
            csr_erow = erow[order]
            csr_cols = ecol[order]
            csr_costs = costs[order]
        counts = np.bincount(csr_erow, minlength=n)
        indptr = np.empty(n + 1, dtype=np.intp)
        indptr[0] = 0
        np.cumsum(counts, out=indptr[1:])
        flat_keys = csr_erow * m + csr_cols
        # Local dual views: u per local row; v_local packs the real columns
        # first, then row r's dummy column at index m + r.
        u = self._u[rows_idx].copy()
        v_local = np.concatenate([self._v[cols_idx], self._vd[rows_idx]])
        return (
            n, m, rows_idx, cols_idx,
            csr_erow, csr_cols, csr_costs, indptr, flat_keys, u, v_local,
        )

    def _csr_from_universe(
        self,
        n: int,
        m: int,
        rows_idx: np.ndarray,
        cols_idx: np.ndarray,
        edge_idx: np.ndarray,
        n_expected: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR arrays via the universe presort (O(E) filter, no lexsort)."""
        uni = self._universe
        idx = np.asarray(edge_idx, dtype=np.intp)
        n_universe = uni.n_edges
        if idx.size != n_expected:
            raise ValidationError(
                f"edge_idx ({idx.size}) and edge arrays ({n_expected}) disagree"
            )
        if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= n_universe):
            raise ValidationError(
                f"edge_idx out of range [0, {n_universe})"
            )
        arena = self._arena
        if arena is not None:
            mask = arena.take("warm_match_umask", n_universe, bool)
            n2r = arena.take("warm_match_n2r", self._node_space, np.intp)
            c2l = arena.take("warm_match_c2l", self._item_space, np.intp)
            ar = arena.arange(max(n, m))
        else:
            mask = np.empty(n_universe, dtype=bool)
            n2r = np.empty(self._node_space, dtype=np.intp)
            c2l = np.empty(self._item_space, dtype=np.intp)
            ar = np.arange(max(n, m), dtype=np.intp)
        mask[:] = False
        mask[idx] = True
        sel = uni.order[mask[uni.order]]
        n2r[rows_idx] = ar[:n]
        c2l[cols_idx] = ar[:m]
        csr_erow = n2r[uni.edge_node[sel]]
        csr_cols = c2l[uni.edge_item[sel]]
        csr_costs = uni.edge_cost[sel]
        return csr_erow, csr_cols, csr_costs

    def _round_matching(self, width: int, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Fresh (-1-filled) round-local ``row4col`` / ``col4row`` buffers."""
        arena = self._arena
        if arena is not None:
            row4col = arena.take("warm_match_l_row4col", width, np.intp)
            col4row = arena.take("warm_match_l_col4row", n, np.intp)
        else:
            row4col = np.empty(width, dtype=np.intp)
            col4row = np.empty(n, dtype=np.intp)
        row4col.fill(-1)
        col4row.fill(-1)
        return row4col, col4row

    def _repair_feasibility(
        self, n, m, u, v_local, csr_erow, csr_cols, csr_costs, row4col, col4row,
    ) -> int:
        """Restore dual feasibility at the cheapest structural cost.

        Two vectorised passes, ordered so repairs stay local:

        1. *Free rows* with a violating edge get ``u`` cut down to their
           cheapest raw live edge cost (capped by the dummy cost ``big``).
           Potentials never exceed zero, so the cut row is feasible against
           every column -- and the row was already due for re-augmentation,
           so the cut costs nothing.  (On cold solves every row is free and
           this pass alone restores feasibility, exactly as it always did.)
        2. Violations that remain run through *matched* rows pricing a
           column too high (typically a column re-entering the round with a
           stale potential).  Instead of releasing every priced-out row --
           each release is a full re-augmentation, and one hot column can
           release dozens of rows -- the column's potential is lowered to
           the largest feasible value ``min(0, min_i (c_ij - u_i))``.  A
           *free* column lowered below zero becomes stale and is re-admitted
           by one :meth:`_insert_column` call in :meth:`_certified_sweep`;
           a *matched* column loses tightness, so its row is released (the
           only remaining release, and rare: it needs a new edge between
           two already-matched endpoints).

        Violations within ``big * 1e-12`` are ignored: edges the dual
        updates leave exactly tight in real arithmetic drift by a few ulps
        of ``big`` in floats, and repairing noise would cost a real
        re-augmentation every round.  Genuine violations are raw cost
        differences, orders of magnitude above the tolerance.

        Returns the number of rows released.
        """
        width = m + n
        worst = np.zeros(n)
        if csr_costs.size:
            slack = csr_costs - u[csr_erow] - v_local[csr_cols]
            np.minimum.at(worst, csr_erow, np.minimum(slack, 0.0))
        np.minimum(
            worst, np.minimum((self._big - u) - v_local[m:width], 0.0), out=worst
        )
        rawmin: np.ndarray | None = None
        released = 0
        rows_bad = np.nonzero((worst < 0.0) & (col4row[:n] == -1))[0]
        if rows_bad.size:
            rawmin = np.full(n, self._big)
            if csr_costs.size:
                np.minimum.at(rawmin, csr_erow, csr_costs)
            u[rows_bad] = np.minimum(u[rows_bad], rawmin[rows_bad])
            released += int(rows_bad.size)
        tol = self._big * 1e-12
        if (
            rows_bad.size == 0
            and not bool(np.any(worst[col4row[:n] >= 0] < -tol))
        ):
            return released
        # Column pass on the post-cut duals.  Edges the sweep made tight
        # (matched pairs, and the degenerate near-ties the dual updates
        # leave exactly tight in real arithmetic) can read as violated by
        # a few ulps of float drift -- the updates shift ``u`` and ``v``
        # by the same delta, which need not cancel bit-exactly -- and a
        # drift-triggered repair costs a real re-augmentation every round.
        # The tolerance is scaled to the dummy cost (the largest magnitude
        # the dual arithmetic ever carries): observed drift sits at
        # ``O(eps * big)`` while genuine violations are raw cost
        # differences, orders of magnitude above it.  ``vmax`` is computed
        # once; a release inside the loop only lowers ``u`` further, which
        # only raises the true bound, so the cached value stays feasible
        # (at worst it over-lowers a potential the insertion re-raises).
        vmax = np.full(width, np.inf)
        if csr_costs.size:
            np.minimum.at(vmax, csr_cols, csr_costs - u[csr_erow])
        vmax[m:width] = np.minimum(vmax[m:width], self._big - u)
        viol = np.nonzero(v_local[:width] > vmax + tol)[0]
        if viol.size:
            partners = row4col[viol]
            matched_cols = viol[partners >= 0]
            if matched_cols.size:
                if rawmin is None:
                    rawmin = np.full(n, self._big)
                    if csr_costs.size:
                        np.minimum.at(rawmin, csr_erow, csr_costs)
                freed_rows = row4col[matched_cols]
                u[freed_rows] = np.minimum(u[freed_rows], rawmin[freed_rows])
                row4col[matched_cols] = -1
                col4row[freed_rows] = -1
                released += int(matched_cols.size)
            v_local[viol] = np.minimum(v_local[viol], np.minimum(vmax[viol], 0.0))
        return released

    def _certified_sweep(
        self, orphans, n, m, u, v_local,
        csr_erow, csr_cols, csr_costs, indptr, row4col, col4row,
    ) -> int:
        """Sweep the orphans, then certify the full JV optimality invariant.

        Successive shortest augmenting paths are exact iff (a) the duals
        are feasible on every live edge (``c_ij - u_i - v_j >= 0``, dummy
        edges included), (b) every matched pair is tight, and (c) every
        *free* column -- real or dummy -- carries ``v_j == 0``.  The sweep
        preserves all three (a free column is only ever popped as an
        augmenting-path sink, which matches it), and callers establish
        (a)/(b) up front (:meth:`_repair_feasibility` plus the
        reconciliation); (c) is the condition graphs that *grow* break:
        a resurrected item, or a column freed by a released or vanished
        row, re-enters free with the negative potential it earned while
        matched.

        Simply zeroing such a column's potential cascades: the raise
        breaks feasibility for every row priced against it, releasing
        those rows re-prices *their* columns, and one stale column can
        end up re-solving most of the graph.  Instead each one is handed
        to :meth:`_insert_column` -- the dynamic-Hungarian column
        insertion, one bounded reverse Dijkstra that either matches the
        column (cost can only improve) or proves a dual ascent to
        ``v == 0`` feasible, touching no other free column either way.
        The stale set therefore shrinks by exactly one per insertion and
        the certificate holds when the loop ends.  Returns the number of
        inserted columns for the ``dual_repairs`` counter.
        """
        self._sweep(
            orphans, n, m, u, v_local,
            csr_erow, csr_cols, csr_costs, indptr, row4col, col4row,
        )
        width = m + n
        stale = np.nonzero(
            (row4col[:width] == -1) & (v_local[:width] < 0.0)
        )[0]
        if not stale.size:
            return 0
        # Column-major adjacency for the reverse Dijkstras, built once per
        # round and only when something is actually stale.
        order_c = np.lexsort((csr_erow, csr_cols))
        csc_rows = csr_erow[order_c].tolist()
        csc_costs = csr_costs[order_c].tolist()
        counts = np.bincount(csr_cols, minlength=m)
        col_iptr = np.empty(m + 1, dtype=np.intp)
        col_iptr[0] = 0
        np.cumsum(counts, out=col_iptr[1:])
        col_iptr_l = col_iptr.tolist()
        pops = 0
        for t in stale.tolist():
            pops += self._insert_column(
                t, n, m, u, v_local, csc_rows, csc_costs, col_iptr_l,
                row4col, col4row,
            )
        self.stats.heap_pops += pops
        return int(stale.size)

    def _insert_column(
        self, t, n, m, u, v_local, csc_rows, csc_costs, col_iptr,
        row4col, col4row,
    ) -> int:
        """Re-admit one free column with stale potential ``v_t < 0``.

        The state on entry is the exact JV certificate for the graph
        *without* ``t`` (every row matched and tight, feasible duals,
        every other free column at zero).  Adding one column changes the
        optimum by at most one alternating path, found by a single
        Dijkstra rooted at ``t`` over reduced costs: ``t -> row`` along
        any edge (``c - u - v_t``, non-negative by feasibility), ``row ->
        its matched column`` at zero (tight), ``column -> row`` along any
        edge.  Every reached column is matched (columns only enter via
        their matched row), and *freeing* a matched column ``c`` is legal
        once its potential reaches zero -- at ascent ``delta = dist_c -
        v_c``.  The answer is ``delta = min(-v_t, min_c (dist_c - v_c))``
        over popped columns (the heap is popped until its front can no
        longer beat that bound):

        * if ``-v_t`` wins, no augmentation improves on raising ``v_t``
          itself: scanned duals shift by their slack to ``delta`` and
          ``t`` stays free at exactly ``v_t = 0``;
        * otherwise the alternating path from ``t`` to the winning column
          is applied -- ``t`` becomes matched (at ``v_t + delta <= 0``,
          so the sign constraint holds), the winner is freed at exactly
          ``v = 0``, and every new pair is tight by the relaxation
          equalities.

        Scanned rows take ``u -= delta - dist`` and scanned columns
        ``v += delta - dist`` (their matched pairs shift together, so
        tightness is preserved; the sink-candidate minimum is what proves
        no matched ``v`` crosses zero).  Either way feasibility, tightness
        and the free-column-zero invariant all hold on exit, and no other
        free column is touched -- so one insertion per stale column
        restores the certificate.  Returns the number of Dijkstra pops.
        """
        big = self._big
        vt = float(v_local[t])
        best = -vt  # pure dual-ascent candidate: raise v_t all the way to 0
        best_sink = -1
        INF = np.inf
        distr = [INF] * n
        distc = [INF] * (m + n)
        scanned_r = [False] * n
        scanned_c = [False] * (m + n)
        sr_ids: list[int] = []
        sc_ids: list[int] = []
        predr = [-1] * n
        # Push pruning: the loop below only ever pops entries strictly
        # under ``best``, and ``best`` only falls, so a candidate at or
        # above it can be dropped at push time (its tentative distance
        # still updates, keeping later strict-``<`` relaxations exact).
        heap: list[tuple[float, int, int]] = []
        if t >= m:
            r = t - m
            cand = (big - float(u[r])) - vt
            distr[r] = cand
            predr[r] = t
            if cand < best:
                heappush(heap, (cand, 1, r))
        else:
            for p in range(col_iptr[t], col_iptr[t + 1]):
                r = csc_rows[p]
                cand = (csc_costs[p] - float(u[r])) - vt
                if cand < distr[r]:
                    distr[r] = cand
                    predr[r] = t
                    if cand < best:
                        heappush(heap, (cand, 1, r))
        pops = 0
        while heap and heap[0][0] < best:
            d, kind, idx = heappop(heap)
            if kind == 1:
                if scanned_r[idx]:
                    continue
                scanned_r[idx] = True
                sr_ids.append(idx)
                pops += 1
                c = int(col4row[idx])  # rows are all matched on entry
                if not scanned_c[c]:
                    distc[c] = d  # traverse the tight matched edge at +0
                    heappush(heap, (d, 0, c))
            else:
                c = idx
                if scanned_c[c]:
                    continue
                scanned_c[c] = True
                sc_ids.append(c)
                pops += 1
                vc = float(v_local[c])
                cand_sink = d - vc  # ascent at which freeing c becomes legal
                if cand_sink < best:
                    best = cand_sink
                    best_sink = c
                if c < m:
                    for p in range(col_iptr[c], col_iptr[c + 1]):
                        r = csc_rows[p]
                        if scanned_r[r]:
                            continue
                        nd = d + ((csc_costs[p] - float(u[r])) - vc)
                        if nd < distr[r]:
                            distr[r] = nd
                            predr[r] = c
                            if nd < best:
                                heappush(heap, (nd, 1, r))
                # A dummy column reaches only its own row, which is the
                # matched row it was entered through -- nothing to relax.
        delta = best
        for r in sr_ids:
            dr = distr[r]
            if dr < delta:
                u[r] -= delta - dr
        for c in sc_ids:
            dc = distc[c]
            if dc < delta:
                v_local[c] += delta - dc
        v_local[t] += delta
        if best_sink >= 0:
            c = best_sink
            r = int(row4col[c])
            row4col[c] = -1  # the winner is freed, at exactly v == 0
            while True:
                pc = predr[r]
                nr = int(row4col[pc])  # -1 once pc == t
                row4col[pc] = r
                col4row[r] = pc
                if pc == t:
                    break
                r = nr
        return pops

    # -- public API -----------------------------------------------------------
    def solve_round(
        self,
        rows: Sequence[int],
        cols: np.ndarray,
        edge_rows: np.ndarray,
        edge_cols: np.ndarray,
        edge_costs: Sequence[float],
    ) -> list[tuple[int, int, float]]:
        """Solve one round's matching, reusing the previous round's duals.

        Every row is (re-)augmented from scratch; the persistent matching of
        :meth:`solve_round_delta` is neither read nor written, so the two
        entry points can be compared differentially on one solver.

        Parameters
        ----------
        rows:
            Global cloudlet ids of the round's left nodes (the duals are
            gathered/scattered through these ids).
        cols:
            Global item indices of the round's right nodes.
        edge_rows, edge_cols, edge_costs:
            The round's edges in *round-local* indices (the exact arrays
            :meth:`RoundState.build_edges` emits).  Costs must be
            non-negative -- the zero dual start of the first round is only
            feasible then (Algorithm 2's Eq. 3 costs always are).

        Returns
        -------
        list[tuple[int, int, float]]
            Matched ``(local_row, local_col, cost)`` triples sorted by row;
            maximum cardinality, minimum total cost among maximum matchings.
        """
        built = self._build_round(rows, cols, edge_rows, edge_cols, edge_costs)
        if built is None:
            return []
        (n, m, rows_idx, cols_idx,
         csr_erow, csr_cols, csr_costs, indptr, flat_keys, u, v_local) = built
        row4col, col4row = self._round_matching(m + n, n)
        stats = self.stats
        # Edges this graph has that no prior round priced (returned items,
        # re-added edges) can violate the persisted duals; the feasibility
        # cut releases nothing here (every row is already an orphan) and is
        # a no-op on Algorithm 2's shrink-only rounds.  The certified sweep
        # then re-augments every row and zeroes whatever stale negative
        # potential survives on still-free columns.
        stats.dual_repairs += self._repair_feasibility(
            n, m, u, v_local, csr_erow, csr_cols, csr_costs, row4col, col4row
        )
        stats.rows_total += n
        stats.rows_reaugmented += n
        stats.dual_repairs += self._certified_sweep(
            list(range(n)), n, m, u, v_local,
            csr_erow, csr_cols, csr_costs, indptr, row4col, col4row,
        )
        # Persist the improved potentials for the next round.
        self._u[rows_idx] = u
        self._v[cols_idx] = v_local[:m]
        self._vd[rows_idx] = v_local[m:]
        stats.rounds += 1
        return self._emit(m, col4row, csr_costs, flat_keys)

    def solve_round_delta(
        self,
        rows: Sequence[int],
        cols: np.ndarray,
        edge_rows: np.ndarray,
        edge_cols: np.ndarray,
        edge_costs: Sequence[float],
        *,
        edge_idx: np.ndarray | None = None,
    ) -> list[tuple[int, int, float]]:
        """Delta re-solve: keep every still-valid pair, re-augment orphans.

        Same contract and return value as :meth:`solve_round` (an exact
        min-cost maximum matching -- the matched pairing may differ from the
        cold one only where multiple optima tie), plus:

        * the matching persists across calls keyed by global ids, and the
          round starts by reconciling it against the new graph: pairs whose
          item is gone or whose edge disappeared orphan their row, rows
          matched to their dummy stay dummy-matched, everything else stays
          matched (still tight under the persisted duals);
        * ``cols`` must be strictly ascending (both round engines emit it
          so; the reconciliation binary-searches it);
        * ``edge_idx`` -- optional universe positions of the round's edges
          (``RoundState.build_edges`` computes them anyway).  With a
          :class:`UniverseIndex` attached this derives the CSR layout by an
          O(E) filter of the presort; results are bit-identical to the
          ``lexsort`` path.

        The first delta round of a solver (nothing persisted) re-augments
        every row and is bit-identical to :meth:`solve_round`.
        """
        built = self._build_round(
            rows, cols, edge_rows, edge_cols, edge_costs, edge_idx=edge_idx
        )
        if built is None:
            return []
        (n, m, rows_idx, cols_idx,
         csr_erow, csr_cols, csr_costs, indptr, flat_keys, u, v_local) = built
        if m > 1 and not bool(np.all(cols_idx[1:] > cols_idx[:-1])):
            raise ValidationError(
                "solve_round_delta requires strictly ascending cols "
                "(global item indices)"
            )
        row4col, col4row = self._round_matching(m + n, n)

        # -- reconcile the persisted matching with this round's graph --------
        prior = self._g_col4row[rows_idx]
        drows = np.nonzero(prior == DUMMY)[0]
        if drows.size:
            # Dummy edges never disappear and their duals are untouched
            # between rounds, so dummy-matched rows stay dummy-matched.
            col4row[drows] = m + drows
            row4col[m + drows] = drows
        crows = np.nonzero(prior >= 0)[0]
        if crows.size:
            gitems = prior[crows]
            cpos = np.minimum(np.searchsorted(cols_idx, gitems), m - 1)
            alive = cols_idx[cpos] == gitems
            # Edge-existence test: flat_keys is strictly ascending, so one
            # batched searchsorted answers membership for every kept pair.
            q = crows * m + cpos
            p = np.minimum(np.searchsorted(flat_keys, q), flat_keys.size - 1)
            keep = alive & (flat_keys[p] == q)
            # Mutuality: a row absent from a round keeps its stale
            # ``_g_col4row`` entry while its item may be re-matched to
            # another row.  Keeping the pair only when the item's entry
            # still points back at the row rejects those stale claims.
            keep &= self._g_row4col[gitems] == rows_idx[crows]
            kr = crows[keep]
            if kr.size:
                kc = cpos[keep]
                col4row[kr] = kc
                row4col[kc] = kr

        # -- exactness repair --------------------------------------------------
        # Algorithm 2's consume-matched shrink-only rounds keep the JV
        # invariant by construction; arbitrary callers -- resurrected items,
        # added edges, online re-solves after failures -- can break it and
        # are repaired in place (rows released by the repair join the
        # orphans below).
        stats = self.stats
        stats.dual_repairs += self._repair_feasibility(
            n, m, u, v_local, csr_erow, csr_cols, csr_costs, row4col, col4row
        )

        orphans = np.nonzero(col4row == -1)[0].tolist()
        stats.rows_total += n
        stats.rows_kept += n - len(orphans)
        stats.rows_reaugmented += len(orphans)

        stats.dual_repairs += self._certified_sweep(
            orphans, n, m, u, v_local,
            csr_erow, csr_cols, csr_costs, indptr, row4col, col4row,
        )

        self._u[rows_idx] = u
        self._v[cols_idx] = v_local[:m]
        self._vd[rows_idx] = v_local[m:]

        # -- persist the matching for the next round's reconciliation --------
        real = col4row < m  # every row is matched now (real col or its dummy)
        gnew = np.full(n, DUMMY, dtype=np.intp)
        if real.any():
            ritems = cols_idx[col4row[real]]
            gnew[np.nonzero(real)[0]] = ritems
            self._g_row4col[ritems] = rows_idx[real]
        self._g_col4row[rows_idx] = gnew
        stats.rounds += 1
        stats.delta_rounds += 1
        return self._emit(m, col4row, csr_costs, flat_keys)

    def snapshot(self) -> dict[str, np.ndarray]:
        """Copy the persistent state: duals and the global matching.

        Together with :meth:`restore` this checkpoints an online-serving
        solver so the same event stream can be replayed from identical warm
        state -- benchmark repetitions, A/B comparisons, or speculative
        what-if re-solves that must not disturb the live matching.  The
        :attr:`stats` counters are *not* part of the snapshot (they describe
        work done, not state held).
        """
        return {
            "u": self._u.copy(),
            "v": self._v.copy(),
            "vd": self._vd.copy(),
            "g_row4col": self._g_row4col.copy(),
            "g_col4row": self._g_col4row.copy(),
        }

    def restore(self, state: dict[str, np.ndarray]) -> None:
        """Load state captured by :meth:`snapshot` on this solver.

        Copies into the live buffers (arena leases stay valid), so the next
        :meth:`solve_round_delta` reconciles against exactly the matching
        and potentials held when the snapshot was taken.
        """
        try:
            u, v, vd = state["u"], state["v"], state["vd"]
            r4c, c4r = state["g_row4col"], state["g_col4row"]
        except KeyError as exc:  # pragma: no cover - caller error
            raise ValidationError(f"snapshot missing field {exc}") from exc
        if u.shape != self._u.shape or v.shape != self._v.shape:
            raise ValidationError(
                "snapshot shape mismatch: "
                f"({u.shape}, {v.shape}) vs ({self._u.shape}, {self._v.shape})"
            )
        self._u[:] = u
        self._v[:] = v
        self._vd[:] = vd
        self._g_row4col[:] = r4c
        self._g_col4row[:] = c4r

    # -- sweep engines --------------------------------------------------------
    def _sweep(
        self, orphans, n, m, u, v_local,
        csr_erow, csr_cols, csr_costs, indptr, row4col, col4row,
    ) -> None:
        if not orphans:
            return
        if sweep_mode() == "scan":
            self._sweep_scan(
                orphans, n, m, u, v_local, csr_cols, csr_costs, indptr,
                row4col, col4row,
            )
        else:
            self._sweep_heap(
                orphans, n, m, u, v_local, csr_erow, csr_cols, csr_costs,
                indptr, row4col, col4row,
            )

    def _sweep_scan(
        self, orphans, n, m, u, v_local, csr_cols, csr_costs, indptr,
        row4col, col4row,
    ) -> None:
        """The original full-array ``argmin`` sweep -- the differential
        reference, verbatim apart from iterating ``orphans`` (which is
        ``range(n)`` on cold solves) and counting pops."""
        big = self._big
        width = m + n
        dist = self._dist[:width]
        pred = self._pred[:width]
        scanned = self._scanned[:width]
        INF = np.inf
        pops = 0
        popped_cols: list[int] = []
        popped_dist: list[float] = []
        for cur_row in orphans:
            dist.fill(INF)
            pred.fill(-1)
            scanned.fill(False)
            popped_cols.clear()
            popped_dist.clear()
            i = cur_row
            offset = 0.0
            while True:
                # Relax row i's real edges (vectorised over its CSR slice)
                # and its private dummy edge.  Strict ``<`` keeps the first
                # (lowest-offset) predecessor on ties.
                lo, hi = indptr[i], indptr[i + 1]
                if hi > lo:
                    nbr = csr_cols[lo:hi]
                    cand = offset + (csr_costs[lo:hi] - u[i] - v_local[nbr])
                    better = ~scanned[nbr] & (cand < dist[nbr])
                    improved = nbr[better]
                    dist[improved] = cand[better]
                    pred[improved] = i
                dummy = m + i
                if not scanned[dummy]:
                    cand_d = offset + (big - u[i] - v_local[dummy])
                    if cand_d < dist[dummy]:
                        dist[dummy] = cand_d
                        pred[dummy] = i
                # Pop the closest unscanned column; popped entries are reset
                # to inf in `dist` (their true distance lives in popped_dist)
                # so the argmin needs no per-pop masking copy.  argmin's
                # first-index rule makes ties deterministic (real columns
                # sit before dummy columns in the local layout).
                j = int(np.argmin(dist))
                closest = float(dist[j])
                if closest == INF:  # pragma: no cover - dummy edges guarantee progress
                    raise ValidationError("augmentation stalled (no reachable column)")
                pops += 1
                scanned[j] = True
                dist[j] = INF
                if row4col[j] < 0:
                    sink, minval = j, closest
                    break
                popped_cols.append(j)
                popped_dist.append(closest)
                i = int(row4col[j])
                offset = closest

            # Dual update: scanned columns (and their matched rows) shift by
            # their distance shortfall; the inserted row absorbs the full
            # path length.  Matched edges stay tight, feasibility is kept.
            if popped_cols:
                sel = np.asarray(popped_cols, dtype=np.intp)
                delta = minval - np.asarray(popped_dist)
                v_local[sel] -= delta
                u[row4col[sel]] += delta
            u[cur_row] += minval

            # Augment: flip the alternating path back to the inserted row.
            j = sink
            while True:
                i = int(pred[j])
                row4col[j] = i
                col4row[i], j = j, col4row[i]
                if i == cur_row:
                    break
        self.stats.scan_pops += pops

    def _sweep_heap(
        self, orphans, n, m, u, v_local, csr_erow, csr_cols, csr_costs,
        indptr, row4col, col4row,
    ) -> None:
        """Prepass quick-matching + lazy-deletion heap Dijkstra.

        Bit-identical to :meth:`_sweep_scan` (same floats, same tie-breaks,
        same dual updates); only the work per augmentation differs.
        """
        stats = self.stats
        big = self._big
        width = m + n
        E = csr_costs.size

        # -- prepass: each orphan row's cheapest reduced-cost column, -------
        # first-index.  cand0 reproduces the scan's first-iteration
        # relaxation bit-for-bit: offset (0.0) + ((cost - u_i) - v_j),
        # evaluated left-associatively.  Delta rounds orphan only a handful
        # of rows, so their candidates are gathered from just those CSR
        # slices; cold rounds (every row an orphan) keep the full-array
        # form.  Both produce identical floats for the rows they cover.
        minv = np.full(n, np.inf)
        argcol = np.full(n, -1, dtype=np.intp)
        if len(orphans) * 4 < n:
            orph = np.asarray(orphans, dtype=np.intp)
            lo = indptr[orph]
            lens = indptr[orph + 1] - lo
            total = int(lens.sum())
            if total:
                seg = np.zeros(orph.size, dtype=np.intp)
                np.cumsum(lens[:-1], out=seg[1:])
                pos = (np.arange(total, dtype=np.intp)
                       - np.repeat(seg, lens) + np.repeat(lo, lens))
                g_cols = csr_cols[pos]
                cand0 = 0.0 + ((csr_costs[pos] - u[np.repeat(orph, lens)])
                               - v_local[g_cols])
                ne = lens > 0
                ne_starts = seg[ne]
                rows_ne = orph[ne]
                minv[rows_ne] = np.minimum.reduceat(cand0, ne_starts)
                hit = cand0 == np.repeat(minv[orph], lens)
                first = np.minimum.reduceat(np.where(hit, pos, E), ne_starts)
                argcol[rows_ne] = csr_cols[first]
        elif E:
            arena = self._arena
            idx_e = (arena.arange(E) if arena is not None
                     else np.arange(E, dtype=np.intp))
            cand0 = 0.0 + ((csr_costs - u[csr_erow]) - v_local[csr_cols])
            starts = indptr[:-1]
            nonempty = indptr[1:] > starts
            # reduceat over the *nonempty* segment starts only: empty
            # segments have zero width, so consecutive nonempty starts
            # still delimit exactly the nonempty rows' CSR slices (and stay
            # in range, which the raw starts do not when trailing rows are
            # empty).
            ne_starts = starts[nonempty]
            minv[nonempty] = np.minimum.reduceat(cand0, ne_starts)
            hit = cand0 == minv[csr_erow]
            first = np.minimum.reduceat(np.where(hit, idx_e, E), ne_starts)
            argcol[nonempty] = csr_cols[first]
        dumv = 0.0 + ((big - u) - v_local[m:width])

        minv_l = minv.tolist()
        dumv_l = dumv.tolist()
        arg_l = argcol.tolist()
        iptr_l = indptr.tolist()
        # The sequential part keeps ``u`` and the matching on plain Python
        # lists (same IEEE doubles, no tiny-slice NumPy overhead); the big
        # per-edge arrays stay NumPy so the vectorised relaxations can
        # slice them, and the rare cache-miss loop reads them per scalar.
        u_l = u.tolist()
        r4c = row4col[:width].tolist()
        c4r = col4row[:n].tolist()
        # Real columns whose potential changed since the prepass.  v only
        # ever *falls*, so a stale candidate can only have got worse -- a
        # clean candidate is therefore still the row's first-index minimum.
        # (An unprocessed orphan's dummy column is free, and free columns
        # are only ever popped as sinks, so cached ``dumv`` is always exact.)
        dirty: set[int] = set()
        quick = 0
        pops = 0
        for cur_row in orphans:
            mv = minv_l[cur_row]
            dv = dumv_l[cur_row]
            if mv > dv:
                # The private dummy is strictly cheapest (and always free
                # for an orphan row); a dirty cached candidate could only
                # have got *worse*, so the comparison stands either way.
                d = m + cur_row
                u_l[cur_row] += dv
                r4c[d] = cur_row
                c4r[cur_row] = d
                quick += 1
                continue
            c = arg_l[cur_row]
            if c in dirty or r4c[c] >= 0:
                # Cache miss (stale candidate, or the column was claimed by
                # an earlier row this round): recompute the row's fresh
                # first-relaxation minimum -- exactly the scan's first pop
                # under the *current* duals -- in O(degree).
                ui = u_l[cur_row]
                mv = np.inf
                c = -1
                for p in range(iptr_l[cur_row], iptr_l[cur_row + 1]):
                    j = int(csr_cols[p])
                    cand = 0.0 + ((csr_costs[p] - ui) - v_local[j])
                    if cand < mv:
                        mv = cand
                        c = j
                if mv > dv:
                    d = m + cur_row
                    u_l[cur_row] += dv
                    r4c[d] = cur_row
                    c4r[cur_row] = d
                    quick += 1
                    continue
                if r4c[c] >= 0:
                    # Genuine conflict: the cheapest column is matched, so
                    # the augmenting path has length > 1.
                    pops += self._augment_heap(
                        cur_row, m, u_l, v_local, csr_cols, csr_costs,
                        iptr_l, r4c, c4r, dirty,
                    )
                    continue
            # First pop is a free column: the scan would have ended here.
            u_l[cur_row] += mv
            r4c[c] = cur_row
            c4r[cur_row] = c
            quick += 1
        u[:] = u_l
        row4col[:width] = r4c
        col4row[:n] = c4r
        stats.quick_matches += quick
        stats.heap_pops += pops

    def _augment_heap(
        self, cur_row, m, u_l, v_local, csr_cols, csr_costs, iptr_l,
        r4c, c4r, dirty,
    ) -> int:
        """One shortest augmenting path with a lazy-deletion binary heap.

        Shares the sweep's Python lists for ``u`` and the matching, but
        relaxes each popped row's whole edge slice as one NumPy expression
        (the per-edge Python loop dominated the profile), and keeps *free*
        columns out of the heap entirely: the search can only ever end at
        the cheapest free column reached, so a single ``(value, column)``
        running minimum stands in for all of them, and matched candidates
        at or above that bound are pruned at push time (the bound only
        falls, so a pruned entry could never have popped first).  Pop
        order provably matches the scan's ``argmin``: pushed values are
        the scan's exact floats (the elementwise ``offset + ((cost - u_i)
        - v_j)`` double arithmetic is associativity-identical to the
        scalar form), per-column pushes are strictly decreasing
        (strict-``<`` relaxation against the tentative distance), so a
        column's minimal entry pops first, and both the heap and the
        free-column minimum order ties by ``(value, column)`` -- the
        scan's first-index rule.  Stale heap entries pop later and are
        skipped because the column is already scanned; scanned columns
        take a ``-inf`` tentative distance so the vectorised strict-``<``
        test rejects them without an explicit mask.
        """
        big = self._big
        width = m + len(c4r)
        dist = np.full(width, np.inf)
        pred = [-1] * width
        scanned = [False] * width
        heap: list[tuple[float, int]] = []
        best_val = np.inf
        best_col = -1
        popped_cols: list[int] = []
        popped_dist: list[float] = []
        pops = 0
        i = cur_row
        offset = 0.0
        while True:
            ui = u_l[i]
            lo = iptr_l[i]
            hi = iptr_l[i + 1]
            if hi > lo:
                jcols = csr_cols[lo:hi]
                cand = offset + ((csr_costs[lo:hi] - ui) - v_local[jcols])
                imp = cand < dist[jcols]
                cimp = cand[imp]
                if cimp.size:
                    jimp = jcols[imp]
                    dist[jimp] = cimp
                    for cc, jj in zip(cimp.tolist(), jimp.tolist()):
                        pred[jj] = i
                        if r4c[jj] < 0:
                            if cc < best_val or (cc == best_val and jj < best_col):
                                best_val = cc
                                best_col = jj
                        elif cc < best_val or (cc == best_val and jj < best_col):
                            heappush(heap, (cc, jj))
            d = m + i
            # The private dummy of every relaxed row is free: a matched
            # dummy could only be reached through its own row, which would
            # itself have to be reached through that same dummy.
            if not scanned[d]:
                cd = offset + ((big - ui) - v_local[d])
                if cd < dist[d]:
                    dist[d] = cd
                    pred[d] = i
                    if cd < best_val or (cd == best_val and d < best_col):
                        best_val = cd
                        best_col = d
            while True:
                if heap:
                    entry = heap[0]
                    if best_col < 0 or entry < (best_val, best_col):
                        heappop(heap)
                        j = entry[1]
                        if scanned[j]:
                            continue  # lazy deletion: stale entries skip here
                        closest = entry[0]
                        break
                if best_col < 0:  # pragma: no cover - dummy edges guarantee progress
                    raise ValidationError("augmentation stalled (no reachable column)")
                closest, j = best_val, best_col
                break
            pops += 1
            scanned[j] = True
            dist[j] = -np.inf
            if r4c[j] < 0:
                sink, minval = j, closest
                break
            popped_cols.append(j)
            popped_dist.append(closest)
            i = r4c[j]
            offset = closest
        for jc, dd in zip(popped_cols, popped_dist):
            # Same per-element update the scan applies vectorised (popped
            # columns and their matched rows are pairwise distinct).
            delta = minval - dd
            v_local[jc] -= delta
            u_l[r4c[jc]] += delta
            if jc < m:
                dirty.add(jc)
        u_l[cur_row] += minval
        j = sink
        while True:
            i = pred[j]
            r4c[j] = i
            c4r[i], j = j, c4r[i]
            if i == cur_row:
                break
        return pops

    # -- output ---------------------------------------------------------------
    @staticmethod
    def _emit(m, col4row, csr_costs, flat_keys) -> list[tuple[int, int, float]]:
        """Matched triples, costs recovered by one batched searchsorted."""
        pairs = np.nonzero((col4row >= 0) & (col4row < m))[0]
        if pairs.size == 0:
            return []
        jcols = col4row[pairs]
        pos = np.searchsorted(flat_keys, pairs * m + jcols)
        return list(zip(pairs.tolist(), jcols.tolist(), csr_costs[pos].tolist()))


def warm_min_cost_max_matching(
    n_rows: int,
    n_cols: int,
    edge_rows: np.ndarray,
    edge_cols: np.ndarray,
    edge_costs: np.ndarray,
) -> list[tuple[int, int, float]]:
    """Cold single-shot entry point for the warm-started solver.

    Used by the generic :func:`repro.matching.mincost.min_cost_max_matching`
    interface (and by tests) when no round sequence exists to carry duals
    across.  Negative costs are handled by a uniform shift -- it adds
    ``k * shift`` to every cardinality-``k`` matching, leaving the set of
    min-cost maximum matchings unchanged -- and decoded edges report the
    original cost floats.
    """
    costs = np.asarray(edge_costs, dtype=np.float64)
    if n_rows == 0 or n_cols == 0 or costs.size == 0:
        return []
    low = float(costs.min())
    shift = -low if low < 0.0 else 0.0
    shifted = costs + shift if shift else costs
    solver = DualReusingSolver(n_rows, n_cols, universe_cost_sum=float(shifted.sum()))
    matched = solver.solve_round(
        np.arange(n_rows, dtype=np.intp),
        np.arange(n_cols, dtype=np.intp),
        edge_rows,
        edge_cols,
        shifted,
    )
    if not shift:
        return matched
    # Recover original costs by edge identity (never unshift by arithmetic):
    # one batched searchsorted over the (row, col)-keyed edge list.
    rows = np.asarray(edge_rows, dtype=np.intp)
    cols = np.asarray(edge_cols, dtype=np.intp)
    keys = rows * n_cols + cols
    key_order = np.argsort(keys, kind="stable")
    sorted_keys = keys[key_order]
    mr = np.asarray([t[0] for t in matched], dtype=np.intp)
    mc = np.asarray([t[1] for t in matched], dtype=np.intp)
    pos = key_order[np.searchsorted(sorted_keys, mr * n_cols + mc)]
    return list(zip(mr.tolist(), mc.tolist(), costs[pos].tolist()))


__all__ = [
    "DUMMY",
    "DualReusingSolver",
    "UniverseIndex",
    "WARM_DELTA_ENV",
    "WARM_SWEEP_ENV",
    "WarmStats",
    "sweep_mode",
    "warm_delta_enabled",
    "warm_min_cost_max_matching",
]
