"""Minimum-cost maximum matching with forbidden edges.

Algorithm 2 needs, per round, a *maximum-cardinality* matching between
cloudlets and remaining items that, among all maximum matchings, minimises
total edge cost -- on a bipartite graph where most (cloudlet, item) pairs
are simply not edges.

Reduction.  Pad the ``n x m`` bipartite cost structure to an
``(n + m) x (n + m)`` square assignment problem:

* real block ``[0:n, 0:m]``: actual edge costs; non-edges get ``B``;
* right block ``[0:n, m:]``: ``B`` (a left node matched here is unmatched);
* bottom block ``[n:, 0:m]``: ``B`` (a right node matched here is unmatched);
* corner block ``[n:, m:]``: ``0`` (pairing the dummies is free).

With ``B`` strictly larger than the sum of all real edge costs (plus the
spread the duals may introduce), a matching of cardinality ``k`` has padded
objective ``sum(chosen costs) + (n + m - 2k) * B``; minimising it therefore
maximises ``k`` first and minimises cost second -- exactly min-cost maximum
matching.  Assignments that land in a ``B`` cell are decoded as "unmatched".

Backends: ``"scipy"`` (default; :func:`scipy.optimize.linear_sum_assignment`)
and ``"own"`` (:func:`repro.matching.hungarian.solve_assignment`).  Tests
assert both return identical cardinality and cost on random graphs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.matching.hungarian import solve_assignment
from repro.util.errors import ValidationError

BACKENDS = ("scipy", "own")


@dataclass(frozen=True)
class MatchEdge:
    """One matched pair: left node ``row``, right node ``col``, its ``cost``."""

    row: int
    col: int
    cost: float


def _padded_matrix(
    n_rows: int, n_cols: int, edges: Mapping[tuple[int, int], float]
) -> tuple[np.ndarray, float]:
    """Build the padded square matrix and return it with the ``B`` used."""
    finite_sum = sum(abs(c) for c in edges.values())
    big = finite_sum + 1.0
    size = n_rows + n_cols
    matrix = np.full((size, size), big)
    matrix[n_rows:, n_cols:] = 0.0
    for (r, c), cost in edges.items():
        if not (0 <= r < n_rows and 0 <= c < n_cols):
            raise ValidationError(f"edge ({r}, {c}) outside a {n_rows}x{n_cols} graph")
        if not math.isfinite(cost):
            raise ValidationError(f"edge ({r}, {c}) has non-finite cost {cost}")
        matrix[r, c] = cost
    return matrix, big


def min_cost_max_matching(
    n_rows: int,
    n_cols: int,
    edges: Mapping[tuple[int, int], float],
    backend: str = "scipy",
) -> list[MatchEdge]:
    """Minimum-cost maximum matching of a bipartite graph.

    Parameters
    ----------
    n_rows, n_cols:
        Sizes of the two node sets (left 0..n_rows-1, right 0..n_cols-1).
    edges:
        ``(row, col) -> cost`` for existing edges; absent pairs are
        forbidden.  Costs may be negative.
    backend:
        ``"scipy"`` (default) or ``"own"`` (the from-scratch Hungarian).

    Returns
    -------
    list[MatchEdge]
        The matched pairs, sorted by row; maximum cardinality, and of
        minimum total cost among maximum matchings.
    """
    if n_rows < 0 or n_cols < 0:
        raise ValidationError(f"negative dimensions: {n_rows}x{n_cols}")
    if backend not in BACKENDS:
        raise ValidationError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    if n_rows == 0 or n_cols == 0 or not edges:
        return []

    matrix, big = _padded_matrix(n_rows, n_cols, edges)
    if backend == "scipy":
        rows, cols = linear_sum_assignment(matrix)
        pairs = zip(rows.tolist(), cols.tolist())
    else:
        assignment, _ = solve_assignment(matrix)
        pairs = ((i, int(j)) for i, j in enumerate(assignment))

    matched: list[MatchEdge] = []
    for r, c in pairs:
        if r < n_rows and c < n_cols and (r, c) in edges:
            matched.append(MatchEdge(r, c, edges[(r, c)]))
    matched.sort(key=lambda e: e.row)
    return matched


def matching_cardinality_and_cost(matching: list[MatchEdge]) -> tuple[int, float]:
    """``(cardinality, total cost)`` of a matching (testing helper)."""
    return len(matching), sum(e.cost for e in matching)
