"""Minimum-cost maximum matching with forbidden edges.

Algorithm 2 needs, per round, a *maximum-cardinality* matching between
cloudlets and remaining items that, among all maximum matchings, minimises
total edge cost -- on a bipartite graph where most (cloudlet, item) pairs
are simply not edges.

Reduction.  Pad the ``n x m`` bipartite cost structure to an
``(n + m) x (n + m)`` square assignment problem:

* real block ``[0:n, 0:m]``: actual edge costs; non-edges get ``B``;
* right block ``[0:n, m:]``: ``B`` (a left node matched here is unmatched);
* bottom block ``[n:, 0:m]``: ``B`` (a right node matched here is unmatched);
* corner block ``[n:, m:]``: ``0`` (pairing the dummies is free).

With ``B`` strictly larger than the sum of all real edge costs (plus the
spread the duals may introduce), a matching of cardinality ``k`` has padded
objective ``sum(chosen costs) + (n + m - 2k) * B``; minimising it therefore
maximises ``k`` first and minimises cost second -- exactly min-cost maximum
matching.  Assignments that land in a ``B`` cell are decoded as "unmatched".

Backends (``BACKENDS``):

* ``"scipy"`` -- the dense padded reduction above, solved by
  :func:`scipy.optimize.linear_sum_assignment` (the differential baseline);
* ``"own"`` -- the same reduction solved by the from-scratch JV solver of
  :mod:`repro.matching.hungarian`;
* ``"sparse"`` -- :mod:`repro.matching.sparse`: CSR + dummy columns on the
  real edge set only, via ``scipy.sparse.csgraph``;
* ``"warm"`` -- :mod:`repro.matching.warmstart`: a sparse JV solver whose
  dual potentials persist across Algorithm 2's rounds (cold-started here).

``"auto"`` (and the unset default) picks dense below
``SPARSE_CUTOFF = 256`` total nodes per round and sparse above it -- the
measured crossover on heuristic-shaped graphs (mirroring the dual-strategy
pattern of :mod:`repro.kernels.items`).  The ``REPRO_MATCHING`` environment
variable (``MATCHING_ENV``) overrides the default for every solve that does
not pass an explicit backend: ``dense`` (alias for ``scipy``), ``own``,
``sparse``, ``warm``, or ``auto`` -- the kill switch back to the verbatim
dense reference paths.  All backends return identical matching cardinality
and total cost (tests assert it); pairings may permute within equal-cost
matchings.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.matching.hungarian import solve_assignment
from repro.matching.sparse import sparse_min_cost_max_matching
from repro.matching.warmstart import warm_min_cost_max_matching
from repro.util.errors import ValidationError

BACKENDS = ("scipy", "own", "sparse", "warm")

#: Environment variable overriding the default backend ("auto" when unset).
MATCHING_ENV = "REPRO_MATCHING"

#: Spellings accepted by :func:`resolve_backend` beyond ``BACKENDS`` + "auto".
_BACKEND_ALIASES = {"dense": "scipy"}

#: "auto" goes sparse when a round has at least this many total nodes
#: (rows + cols): the measured dense/sparse crossover on heuristic-shaped
#: graphs sits near 2.7x at 350 nodes and below 1x at 160, and the paper's
#: canonical instances stay under it -- so the default is bit-identical to
#: the historical dense path there.
SPARSE_CUTOFF = 256


def resolve_backend(backend: str | None) -> str:
    """Normalise a backend spelling to ``BACKENDS`` + ``"auto"``.

    ``None`` / ``""`` mean "no opinion" and resolve to ``"auto"``; the
    ``"dense"`` alias resolves to ``"scipy"``.  Unknown names raise
    :class:`ValidationError`.
    """
    if not backend:
        return "auto"
    backend = _BACKEND_ALIASES.get(backend, backend)
    if backend != "auto" and backend not in BACKENDS:
        raise ValidationError(
            f"unknown backend {backend!r}; choose from {BACKENDS + ('auto', 'dense')}"
        )
    return backend


def default_backend() -> str:
    """The session default: ``REPRO_MATCHING`` when set, else ``"auto"``."""
    return resolve_backend(os.environ.get(MATCHING_ENV))


def select_backend(backend: str, n_rows: int, n_cols: int) -> str:
    """Concretise ``"auto"`` for one graph's dimensions."""
    if backend != "auto":
        return backend
    return "sparse" if n_rows + n_cols >= SPARSE_CUTOFF else "scipy"


@dataclass(frozen=True)
class MatchEdge:
    """One matched pair: left node ``row``, right node ``col``, its ``cost``."""

    row: int
    col: int
    cost: float


def _validate_big(big: float, finite_sum: float) -> None:
    """The padding only encodes cardinality-dominance while ``B`` strictly
    exceeds the real cost sum *as a float*: an overflowed or
    precision-saturated ``B`` (``finite_sum + 1.0 == finite_sum`` once the
    sum passes 2**53) would let a high-cardinality matching lose to a
    cheaper low-cardinality one, silently."""
    if not math.isfinite(big) or big <= finite_sum:
        raise ValidationError(
            "edge cost magnitudes too large for big-M padding "
            f"(|cost| sum {finite_sum!r} cannot be strictly dominated)"
        )


def _padded_matrix(
    n_rows: int, n_cols: int, edges: Mapping[tuple[int, int], float]
) -> tuple[np.ndarray, float]:
    """Build the padded square matrix and return it with the ``B`` used."""
    if n_rows == 0 or n_cols == 0 or not edges:
        # Zero-edge / one-side-empty: no real cell can host a match, so the
        # pad is pure dummy structure (entry points return [] before ever
        # solving it, but the matrix itself stays well-defined).
        size = n_rows + n_cols
        matrix = np.full((size, size), 1.0)
        matrix[n_rows:, n_cols:] = 0.0
        return matrix, 1.0
    finite_sum = 0.0  # ordered accumulation, identical to sum(abs(c) for ...)
    for (r, c), cost in edges.items():
        if not (0 <= r < n_rows and 0 <= c < n_cols):
            raise ValidationError(f"edge ({r}, {c}) outside a {n_rows}x{n_cols} graph")
        if not math.isfinite(cost):
            raise ValidationError(f"edge ({r}, {c}) has non-finite cost {cost}")
        finite_sum += abs(cost)
    big = finite_sum + 1.0
    _validate_big(big, finite_sum)
    size = n_rows + n_cols
    matrix = np.full((size, size), big)
    matrix[n_rows:, n_cols:] = 0.0
    for (r, c), cost in edges.items():
        matrix[r, c] = cost
    return matrix, big


def min_cost_max_matching(
    n_rows: int,
    n_cols: int,
    edges: Mapping[tuple[int, int], float],
    backend: str = "scipy",
) -> list[MatchEdge]:
    """Minimum-cost maximum matching of a bipartite graph.

    Parameters
    ----------
    n_rows, n_cols:
        Sizes of the two node sets (left 0..n_rows-1, right 0..n_cols-1).
    edges:
        ``(row, col) -> cost`` for existing edges; absent pairs are
        forbidden.  Costs may be negative.
    backend:
        A ``BACKENDS`` name, ``"dense"`` (alias for ``"scipy"``), or
        ``"auto"`` (dense below :data:`SPARSE_CUTOFF` total nodes, sparse
        above).  Default ``"scipy"``.

    Returns
    -------
    list[MatchEdge]
        The matched pairs, sorted by row; maximum cardinality, and of
        minimum total cost among maximum matchings.
    """
    if n_rows < 0 or n_cols < 0:
        raise ValidationError(f"negative dimensions: {n_rows}x{n_cols}")
    backend = resolve_backend(backend)
    if n_rows == 0 or n_cols == 0 or not edges:
        return []
    backend = select_backend(backend, n_rows, n_cols)

    if backend in ("sparse", "warm"):
        rows_a = np.empty(len(edges), dtype=np.intp)
        cols_a = np.empty(len(edges), dtype=np.intp)
        costs_a = np.empty(len(edges), dtype=np.float64)
        for i, ((r, c), cost) in enumerate(edges.items()):
            if not (0 <= r < n_rows and 0 <= c < n_cols):
                raise ValidationError(
                    f"edge ({r}, {c}) outside a {n_rows}x{n_cols} graph"
                )
            if not math.isfinite(cost):
                raise ValidationError(f"edge ({r}, {c}) has non-finite cost {cost}")
            rows_a[i], cols_a[i], costs_a[i] = r, c, cost
        solve = (
            sparse_min_cost_max_matching
            if backend == "sparse"
            else warm_min_cost_max_matching
        )
        return [
            MatchEdge(r, c, cost)
            for r, c, cost in solve(n_rows, n_cols, rows_a, cols_a, costs_a)
        ]

    matrix, big = _padded_matrix(n_rows, n_cols, edges)
    if backend == "scipy":
        rows, cols = linear_sum_assignment(matrix)
        pairs = zip(rows.tolist(), cols.tolist())
    else:
        assignment, _ = solve_assignment(matrix)
        pairs = ((i, int(j)) for i, j in enumerate(assignment))

    matched: list[MatchEdge] = []
    for r, c in pairs:
        if r < n_rows and c < n_cols and (r, c) in edges:
            matched.append(MatchEdge(r, c, edges[(r, c)]))
    matched.sort(key=lambda e: e.row)
    return matched


def matching_cardinality_and_cost(matching: list[MatchEdge]) -> tuple[int, float]:
    """``(cardinality, total cost)`` of a matching (testing helper)."""
    return len(matching), sum(e.cost for e in matching)


class MatchingWorkspace:
    """Reusable buffer for the padded assignment matrix.

    Algorithm 2 solves one matching per round on matrices whose size only
    shrinks as items are placed; reallocating an ``(n+m) x (n+m)`` array per
    round is wasted work.  The workspace keeps one float buffer and hands
    out a ``size x size`` view, growing the buffer only when a larger round
    appears.  Values are always fully overwritten before use, so reuse never
    leaks state between rounds.
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer: np.ndarray | None = None

    def matrix(self, size: int) -> np.ndarray:
        """A ``size x size`` float view, backed by the reusable buffer.

        The buffer is flat and the view a reshape of its prefix, so the
        returned matrix is always C-contiguous -- smaller-than-buffer rounds
        do not pay strided fills or a contiguity copy inside the solver.
        """
        needed = size * size
        buf = self._buffer
        if buf is None or buf.size < needed:
            buf = self._buffer = np.empty(needed, dtype=float)
        return buf[:needed].reshape(size, size)


def min_cost_max_matching_arrays(
    n_rows: int,
    n_cols: int,
    edge_rows: Sequence[int],
    edge_cols: Sequence[int],
    edge_costs: Sequence[float],
    backend: str = "scipy",
    workspace: MatchingWorkspace | None = None,
) -> list[MatchEdge]:
    """Fast-path :func:`min_cost_max_matching` over pre-validated edge arrays.

    Callers (the incremental round engine) maintain the edge set across
    rounds and already know indices are in range, costs are finite, and
    ``(row, col)`` pairs are unique, so the per-edge validation of the
    mapping-based entry point is skipped and the padded matrix can be
    written into a reusable :class:`MatchingWorkspace` buffer.

    Equivalence guarantee: for the same edges in the same order, this
    returns the bit-identical matching of
    ``min_cost_max_matching(n_rows, n_cols, dict(zip(zip(edge_rows,
    edge_cols), edge_costs)), backend)`` -- the pad value ``B`` is the same
    ordered float sum, the padded matrix is element-wise identical, and the
    decode accepts exactly the real-edge cells (a real cell holds ``B`` iff
    it is not an edge, since every edge cost is strictly below ``B``).

    The ``"sparse"``/``"warm"`` backends (and ``"auto"`` above the cutoff)
    skip the padded matrix entirely and hand these arrays straight to the
    CSR solvers; ``workspace`` is ignored there.
    """
    backend = resolve_backend(backend)
    if n_rows == 0 or n_cols == 0 or len(edge_costs) == 0:
        return []
    backend = select_backend(backend, n_rows, n_cols)

    if backend in ("sparse", "warm"):
        solve = (
            sparse_min_cost_max_matching
            if backend == "sparse"
            else warm_min_cost_max_matching
        )
        return [
            MatchEdge(r, c, cost)
            for r, c, cost in solve(n_rows, n_cols, edge_rows, edge_cols, edge_costs)
        ]

    # abs() is the identity on the non-negative costs Algorithm 2 produces,
    # so the plain ordered sum is bit-identical to sum(abs(c) for c in ...)
    # there; the abs pass only runs when a negative cost appears.
    if min(edge_costs) >= 0.0:
        abs_sum = sum(edge_costs)
    else:
        abs_sum = sum(abs(c) for c in edge_costs)
    big = abs_sum + 1.0
    _validate_big(big, abs_sum)
    size = n_rows + n_cols
    matrix = workspace.matrix(size) if workspace is not None else np.empty((size, size))
    matrix.fill(big)
    matrix[n_rows:, n_cols:] = 0.0
    matrix[edge_rows, edge_cols] = edge_costs

    if backend == "scipy":
        rows, cols = linear_sum_assignment(matrix)
        # Vectorised decode: keep real-block cells holding a true edge cost
        # (a real cell equals ``big`` iff it is not an edge, since every edge
        # cost is strictly below ``big``).  scipy returns rows ascending, so
        # the result is already sorted by row.
        real = (rows < n_rows) & (cols < n_cols)
        rr, cc = rows[real], cols[real]
        costs = matrix[rr, cc]
        edge = costs < big
        return [
            MatchEdge(r, c, cost)
            for r, c, cost in zip(
                rr[edge].tolist(), cc[edge].tolist(), costs[edge].tolist()
            )
        ]

    assignment, _ = solve_assignment(matrix)
    matched: list[MatchEdge] = []
    for r, c in enumerate(assignment):
        if r < n_rows and c < n_cols:
            cost = float(matrix[r, int(c)])
            if cost < big:
                matched.append(MatchEdge(r, int(c), cost))
    matched.sort(key=lambda e: e.row)
    return matched
