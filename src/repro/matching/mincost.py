"""Minimum-cost maximum matching with forbidden edges.

Algorithm 2 needs, per round, a *maximum-cardinality* matching between
cloudlets and remaining items that, among all maximum matchings, minimises
total edge cost -- on a bipartite graph where most (cloudlet, item) pairs
are simply not edges.

Reduction.  Pad the ``n x m`` bipartite cost structure to an
``(n + m) x (n + m)`` square assignment problem:

* real block ``[0:n, 0:m]``: actual edge costs; non-edges get ``B``;
* right block ``[0:n, m:]``: ``B`` (a left node matched here is unmatched);
* bottom block ``[n:, 0:m]``: ``B`` (a right node matched here is unmatched);
* corner block ``[n:, m:]``: ``0`` (pairing the dummies is free).

With ``B`` strictly larger than the sum of all real edge costs (plus the
spread the duals may introduce), a matching of cardinality ``k`` has padded
objective ``sum(chosen costs) + (n + m - 2k) * B``; minimising it therefore
maximises ``k`` first and minimises cost second -- exactly min-cost maximum
matching.  Assignments that land in a ``B`` cell are decoded as "unmatched".

Backends: ``"scipy"`` (default; :func:`scipy.optimize.linear_sum_assignment`)
and ``"own"`` (:func:`repro.matching.hungarian.solve_assignment`).  Tests
assert both return identical cardinality and cost on random graphs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.matching.hungarian import solve_assignment
from repro.util.errors import ValidationError

BACKENDS = ("scipy", "own")


@dataclass(frozen=True)
class MatchEdge:
    """One matched pair: left node ``row``, right node ``col``, its ``cost``."""

    row: int
    col: int
    cost: float


def _padded_matrix(
    n_rows: int, n_cols: int, edges: Mapping[tuple[int, int], float]
) -> tuple[np.ndarray, float]:
    """Build the padded square matrix and return it with the ``B`` used."""
    finite_sum = sum(abs(c) for c in edges.values())
    big = finite_sum + 1.0
    size = n_rows + n_cols
    matrix = np.full((size, size), big)
    matrix[n_rows:, n_cols:] = 0.0
    for (r, c), cost in edges.items():
        if not (0 <= r < n_rows and 0 <= c < n_cols):
            raise ValidationError(f"edge ({r}, {c}) outside a {n_rows}x{n_cols} graph")
        if not math.isfinite(cost):
            raise ValidationError(f"edge ({r}, {c}) has non-finite cost {cost}")
        matrix[r, c] = cost
    return matrix, big


def min_cost_max_matching(
    n_rows: int,
    n_cols: int,
    edges: Mapping[tuple[int, int], float],
    backend: str = "scipy",
) -> list[MatchEdge]:
    """Minimum-cost maximum matching of a bipartite graph.

    Parameters
    ----------
    n_rows, n_cols:
        Sizes of the two node sets (left 0..n_rows-1, right 0..n_cols-1).
    edges:
        ``(row, col) -> cost`` for existing edges; absent pairs are
        forbidden.  Costs may be negative.
    backend:
        ``"scipy"`` (default) or ``"own"`` (the from-scratch Hungarian).

    Returns
    -------
    list[MatchEdge]
        The matched pairs, sorted by row; maximum cardinality, and of
        minimum total cost among maximum matchings.
    """
    if n_rows < 0 or n_cols < 0:
        raise ValidationError(f"negative dimensions: {n_rows}x{n_cols}")
    if backend not in BACKENDS:
        raise ValidationError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    if n_rows == 0 or n_cols == 0 or not edges:
        return []

    matrix, big = _padded_matrix(n_rows, n_cols, edges)
    if backend == "scipy":
        rows, cols = linear_sum_assignment(matrix)
        pairs = zip(rows.tolist(), cols.tolist())
    else:
        assignment, _ = solve_assignment(matrix)
        pairs = ((i, int(j)) for i, j in enumerate(assignment))

    matched: list[MatchEdge] = []
    for r, c in pairs:
        if r < n_rows and c < n_cols and (r, c) in edges:
            matched.append(MatchEdge(r, c, edges[(r, c)]))
    matched.sort(key=lambda e: e.row)
    return matched


def matching_cardinality_and_cost(matching: list[MatchEdge]) -> tuple[int, float]:
    """``(cardinality, total cost)`` of a matching (testing helper)."""
    return len(matching), sum(e.cost for e in matching)


class MatchingWorkspace:
    """Reusable buffer for the padded assignment matrix.

    Algorithm 2 solves one matching per round on matrices whose size only
    shrinks as items are placed; reallocating an ``(n+m) x (n+m)`` array per
    round is wasted work.  The workspace keeps one float buffer and hands
    out a ``size x size`` view, growing the buffer only when a larger round
    appears.  Values are always fully overwritten before use, so reuse never
    leaks state between rounds.
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer: np.ndarray | None = None

    def matrix(self, size: int) -> np.ndarray:
        """A ``size x size`` float view, backed by the reusable buffer.

        The buffer is flat and the view a reshape of its prefix, so the
        returned matrix is always C-contiguous -- smaller-than-buffer rounds
        do not pay strided fills or a contiguity copy inside the solver.
        """
        needed = size * size
        buf = self._buffer
        if buf is None or buf.size < needed:
            buf = self._buffer = np.empty(needed, dtype=float)
        return buf[:needed].reshape(size, size)


def min_cost_max_matching_arrays(
    n_rows: int,
    n_cols: int,
    edge_rows: Sequence[int],
    edge_cols: Sequence[int],
    edge_costs: Sequence[float],
    backend: str = "scipy",
    workspace: MatchingWorkspace | None = None,
) -> list[MatchEdge]:
    """Fast-path :func:`min_cost_max_matching` over pre-validated edge arrays.

    Callers (the incremental round engine) maintain the edge set across
    rounds and already know indices are in range, costs are finite, and
    ``(row, col)`` pairs are unique, so the per-edge validation of the
    mapping-based entry point is skipped and the padded matrix can be
    written into a reusable :class:`MatchingWorkspace` buffer.

    Equivalence guarantee: for the same edges in the same order, this
    returns the bit-identical matching of
    ``min_cost_max_matching(n_rows, n_cols, dict(zip(zip(edge_rows,
    edge_cols), edge_costs)), backend)`` -- the pad value ``B`` is the same
    ordered float sum, the padded matrix is element-wise identical, and the
    decode accepts exactly the real-edge cells (a real cell holds ``B`` iff
    it is not an edge, since every edge cost is strictly below ``B``).
    """
    if backend not in BACKENDS:
        raise ValidationError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    if n_rows == 0 or n_cols == 0 or not edge_costs:
        return []

    # abs() is the identity on the non-negative costs Algorithm 2 produces,
    # so the plain ordered sum is bit-identical to sum(abs(c) for c in ...)
    # there; the abs pass only runs when a negative cost appears.
    if min(edge_costs) >= 0.0:
        big = sum(edge_costs) + 1.0
    else:
        big = sum(abs(c) for c in edge_costs) + 1.0
    size = n_rows + n_cols
    matrix = workspace.matrix(size) if workspace is not None else np.empty((size, size))
    matrix.fill(big)
    matrix[n_rows:, n_cols:] = 0.0
    matrix[edge_rows, edge_cols] = edge_costs

    if backend == "scipy":
        rows, cols = linear_sum_assignment(matrix)
        # Vectorised decode: keep real-block cells holding a true edge cost
        # (a real cell equals ``big`` iff it is not an edge, since every edge
        # cost is strictly below ``big``).  scipy returns rows ascending, so
        # the result is already sorted by row.
        real = (rows < n_rows) & (cols < n_cols)
        rr, cc = rows[real], cols[real]
        costs = matrix[rr, cc]
        edge = costs < big
        return [
            MatchEdge(r, c, cost)
            for r, c, cost in zip(
                rr[edge].tolist(), cc[edge].tolist(), costs[edge].tolist()
            )
        ]

    assignment, _ = solve_assignment(matrix)
    matched: list[MatchEdge] = []
    for r, c in enumerate(assignment):
        if r < n_rows and c < n_cols:
            cost = float(matrix[r, int(c)])
            if cost < big:
                matched.append(MatchEdge(r, int(c), cost))
    matched.sort(key=lambda e: e.row)
    return matched
