"""Bipartite matching substrate for the heuristic (Algorithm 2).

Algorithm 2 repeatedly solves *minimum-cost maximum matching* on bipartite
graphs between cloudlets and remaining BMCGAP items.  This subpackage
provides:

* :func:`~repro.matching.hungarian.solve_assignment` -- a from-scratch
  Hungarian algorithm (Jonker-Volgenant shortest-augmenting-path variant
  with dual potentials, O(n^3)), the solver the paper names;
* :func:`~repro.matching.mincost.min_cost_max_matching` -- the wrapper that
  reduces min-cost *maximum* matching with forbidden edges to a padded
  square assignment problem, solvable by either the from-scratch solver or
  :func:`scipy.optimize.linear_sum_assignment` (the differential reference
  backends, cross-validated in the test suite);
* :func:`~repro.matching.mincost.min_cost_max_matching_arrays` -- the
  array-based entry point used by the incremental engine, with a reusable
  :class:`~repro.matching.mincost.MatchingWorkspace` matrix buffer;
* :func:`~repro.matching.sparse.sparse_min_cost_max_matching` -- the CSR
  backend (``"sparse"``): the real edge set plus dummy columns handed to
  ``scipy.sparse.csgraph``, skipping the dense ``(n+m)^2`` padding;
* :class:`~repro.matching.warmstart.DualReusingSolver` -- the ``"warm"``
  backend: a sparse JV solver whose dual potentials *and matching* persist
  across Algorithm 2's rounds (factory:
  :func:`~repro.matching.incremental.warm_solver_for`); delta rounds keep
  still-valid pairs and re-augment only orphans
  (:meth:`~repro.matching.warmstart.DualReusingSolver.solve_round_delta`),
  online serving can checkpoint/rewind the persistent state
  (:meth:`~repro.matching.warmstart.DualReusingSolver.snapshot` /
  :meth:`~repro.matching.warmstart.DualReusingSolver.restore`),
  with :class:`~repro.matching.warmstart.WarmStats` counters, a
  :class:`~repro.matching.warmstart.UniverseIndex` CSR presort, and the
  ``REPRO_WARM_SWEEP`` / ``REPRO_WARM_DELTA`` switches
  (:func:`~repro.matching.warmstart.sweep_mode`,
  :func:`~repro.matching.warmstart.warm_delta_enabled`);
* :class:`~repro.matching.incremental.RoundState` -- the incremental round
  engine for Algorithm 2's hot path: static edge universe, delta-maintained
  residuals, bit-identical to rebuilding ``G_l`` from scratch every round.

Backend selection (``"auto"``, the ``REPRO_MATCHING`` env switch, and the
dense/sparse cutoff) lives in :mod:`repro.matching.mincost`.
"""

from repro.matching.hungarian import solve_assignment
from repro.matching.incremental import RoundState, warm_solver_for
from repro.matching.mincost import (
    BACKENDS,
    MATCHING_ENV,
    SPARSE_CUTOFF,
    MatchEdge,
    MatchingWorkspace,
    default_backend,
    min_cost_max_matching,
    min_cost_max_matching_arrays,
    resolve_backend,
    select_backend,
)
from repro.matching.sparse import sparse_min_cost_max_matching
from repro.matching.warmstart import (
    DualReusingSolver,
    UniverseIndex,
    WarmStats,
    sweep_mode,
    warm_delta_enabled,
    warm_min_cost_max_matching,
)

__all__ = [
    "BACKENDS",
    "MATCHING_ENV",
    "SPARSE_CUTOFF",
    "DualReusingSolver",
    "MatchEdge",
    "MatchingWorkspace",
    "RoundState",
    "default_backend",
    "min_cost_max_matching",
    "min_cost_max_matching_arrays",
    "resolve_backend",
    "select_backend",
    "solve_assignment",
    "sparse_min_cost_max_matching",
    "sweep_mode",
    "UniverseIndex",
    "warm_delta_enabled",
    "warm_min_cost_max_matching",
    "warm_solver_for",
    "WarmStats",
]
