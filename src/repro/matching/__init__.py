"""Bipartite matching substrate for the heuristic (Algorithm 2).

Algorithm 2 repeatedly solves *minimum-cost maximum matching* on bipartite
graphs between cloudlets and remaining BMCGAP items.  This subpackage
provides:

* :func:`~repro.matching.hungarian.solve_assignment` -- a from-scratch
  Hungarian algorithm (Jonker-Volgenant shortest-augmenting-path variant
  with dual potentials, O(n^3)), the solver the paper names;
* :func:`~repro.matching.mincost.min_cost_max_matching` -- the wrapper that
  reduces min-cost *maximum* matching with forbidden edges to a padded
  square assignment problem, solvable by either the from-scratch solver or
  :func:`scipy.optimize.linear_sum_assignment` (used as the default backend
  for speed; the two are cross-validated in the test suite);
* :func:`~repro.matching.mincost.min_cost_max_matching_arrays` -- the
  array-based entry point used by the incremental engine, with a reusable
  :class:`~repro.matching.mincost.MatchingWorkspace` matrix buffer;
* :class:`~repro.matching.incremental.RoundState` -- the incremental round
  engine for Algorithm 2's hot path: static edge universe, delta-maintained
  residuals, bit-identical to rebuilding ``G_l`` from scratch every round.
"""

from repro.matching.hungarian import solve_assignment
from repro.matching.incremental import RoundState
from repro.matching.mincost import (
    MatchEdge,
    MatchingWorkspace,
    min_cost_max_matching,
    min_cost_max_matching_arrays,
)

__all__ = [
    "MatchEdge",
    "MatchingWorkspace",
    "RoundState",
    "min_cost_max_matching",
    "min_cost_max_matching_arrays",
    "solve_assignment",
]
