"""The Hungarian algorithm (Jonker-Volgenant variant), from scratch.

Solves the linear assignment problem: given an ``n x m`` cost matrix with
``n <= m``, match every row to a distinct column minimising total cost.
This is the shortest-augmenting-path formulation with dual potentials
``u`` (rows) and ``v`` (columns): rows are inserted one at a time, each
insertion growing an alternating tree of tight edges via a Dijkstra-like
sweep until a free column is reached, after which potentials are updated
and the augmenting path is flipped.  Complexity O(n^2 m); O(n^3) on square
matrices -- the bound quoted for Algorithm 2's matching step (Thm 6.2).

The inner minimisation is vectorised with NumPy, which keeps the pure-
Python solver usable on the few-hundred-node matrices Algorithm 2 builds.

All costs must be finite; callers with forbidden edges should encode them
as a dominating finite cost (see :mod:`repro.matching.mincost`).
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ValidationError


def solve_assignment(cost: np.ndarray) -> tuple[np.ndarray, float]:
    """Minimise ``sum(cost[i, assign[i]])`` over permutation-like assignments.

    Parameters
    ----------
    cost:
        ``(n, m)`` float matrix with ``n <= m``; every entry finite.

    Returns
    -------
    (assignment, total)
        ``assignment[i]`` is the column matched to row ``i`` (all rows are
        matched, columns are distinct); ``total`` is the objective value.

    Raises
    ------
    ValidationError
        On non-finite entries or ``n > m``.
    """
    cost = np.asarray(cost, dtype=float)
    if cost.ndim != 2:
        raise ValidationError(f"cost must be 2-D, got shape {cost.shape}")
    n, m = cost.shape
    if n == 0:
        return np.empty(0, dtype=int), 0.0
    if n > m:
        raise ValidationError(f"need n <= m, got shape {cost.shape} (transpose the matrix)")
    if not np.isfinite(cost).all():
        raise ValidationError("cost matrix contains non-finite entries")

    INF = np.inf
    # 1-based arrays in the classic formulation; index 0 is a sentinel.
    u = np.zeros(n + 1)  # row potentials
    v = np.zeros(m + 1)  # column potentials
    p = np.zeros(m + 1, dtype=int)  # p[j] = row matched to column j (0 = free)
    way = np.zeros(m + 1, dtype=int)  # predecessor column on the alternating tree

    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = np.full(m + 1, INF)  # cheapest tree-extension cost per column
        used = np.zeros(m + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = p[j0]
            # reduced costs of extending the tree from row i0 to each column
            # still outside the tree; in-tree columns must keep their minv/way
            # (redirecting a used column's `way` would corrupt the
            # alternating-path backtrack)
            cur = cost[i0 - 1, :] - u[i0] - v[1:]
            better = ~used[1:] & (cur < minv[1:])
            np.copyto(minv[1:], cur, where=better)
            way[1:][better] = j0
            # pick the closest unused column
            masked = np.where(used[1:], INF, minv[1:])
            j1 = int(np.argmin(masked)) + 1
            delta = masked[j1 - 1]
            if not np.isfinite(delta):  # pragma: no cover - finite inputs guarantee progress
                raise ValidationError("assignment search stalled (disconnected matrix?)")
            # dual update keeps visited edges tight and shifts the frontier
            u[p[used]] += delta
            v[used] -= delta
            minv[1:][~used[1:]] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        # augment: flip matched edges along the alternating path
        while j0 != 0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    assignment = np.full(n, -1, dtype=int)
    for j in range(1, m + 1):
        if p[j] != 0:
            assignment[p[j] - 1] = j - 1
    total = float(cost[np.arange(n), assignment].sum())
    return assignment, total


def assignment_cost(cost: np.ndarray, assignment: np.ndarray) -> float:
    """Objective value of an assignment vector (testing helper)."""
    cost = np.asarray(cost, dtype=float)
    assignment = np.asarray(assignment, dtype=int)
    return float(cost[np.arange(len(assignment)), assignment].sum())
