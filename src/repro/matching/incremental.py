"""Incremental round engine for Algorithm 2's hot path.

The full-rebuild path of :class:`repro.algorithms.heuristic.MatchingHeuristic`
reconstructs the bipartite graph ``G_l`` from scratch every round: it
re-enumerates the positive-residual cloudlets, re-tests ``C'_u >= c(f_i)``
for every (item, bin) pair through per-pair ledger calls, re-derives every
edge cost, and re-allocates the padded ``(n+m) x (n+m)`` assignment matrix
-- even though one round changes only a handful of residuals and removes a
handful of items.

:class:`RoundState` maintains ``G_l`` across rounds by applying deltas
instead:

* **Static edge universe** -- the candidate edges of the whole solve are
  exactly the generated ``(item, bin)`` pairs; they are flattened once per
  problem into parallel NumPy arrays (item index, cloudlet id, Eq. 3 cost,
  demand) in item-major/bin order and memoized on the (immutable) problem.
* **Items** -- a matched item leaves ``I``; a boolean ``item_alive`` mask
  hides its column.  Nothing else about other items' edges changes.
* **Cloudlets** -- within one solve, residuals only ever *decrease*
  (Algorithm 2 never releases capacity), so edges only disappear, never
  appear.  Only cloudlets that received an allocation in the previous round
  can have crossed a ``c(f_i)`` threshold, so only their entries of the
  residual snapshot are refreshed (``O(touched)`` ledger reads per round);
  the per-round edge mask ``C'_u > 0 and C'_u + eps >= c(f_i)`` is then
  evaluated vectorised over the static arrays.
* **Costs** -- the Eq. 3 cost ``-log(r_i (1-r_i)^k)`` depends only on
  ``(i, k)``; it is read once from the generated items (themselves fed by
  the memoized ladders of :mod:`repro.core.items`) and never recomputed.
* **Matrix buffer** -- the padded assignment matrix is written into a
  reusable :class:`repro.matching.mincost.MatchingWorkspace` instead of
  being reallocated per round.

Equivalence guarantee
---------------------
Per round, :meth:`RoundState.build_edges` emits the exact edge sequence the
full-rebuild path would enumerate: the same row indexing (ledger nodes with
positive residual, in ledger order), the same column indexing (unmatched
items, in generation order), the same item-major/bin-order edge order, and
the same edge condition (``residual > 0`` for the row, ``fits``'s
``residual + EPS >= demand`` for the edge, on bit-identical residual
floats) -- hence the same pad value ``B`` (an ordered float sum), the same
padded matrix bit-for-bit, and the same matching.  The differential suite
in ``tests/test_matching_incremental.py`` proves placements, paper-cost
totals, and per-round reliabilities identical on seeded instances across
topology families, chain lengths, and radii.

``rebuild_every=n`` (``n > 0``) additionally refreshes the entire residual
snapshot from the ledger every ``n`` rounds instead of only the touched
entries -- a belt-and-braces fallback knob; ``rebuild_every=1`` re-reads
every residual every round, i.e. the engine re-derives the graph from the
ledger exactly as the full-rebuild path does.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence
from weakref import WeakKeyDictionary

import numpy as np

from repro.core.items import reliability_ladder
from repro.core.problem import AugmentationProblem
from repro.kernels.items import plan_of
from repro.matching.warmstart import DualReusingSolver, UniverseIndex
from repro.netmodel.capacity import EPS, CapacityLedger
from repro.util.errors import ValidationError

if TYPE_CHECKING:  # import at runtime would cycle through repro.matching
    from repro.kernels.arena import MatrixArena


class _ProblemStatics:
    """Matching structures that depend only on the immutable problem.

    The flattened edge universe (``edge_item``, ``edge_node``, ``edge_cost``,
    ``edge_demand`` -- parallel arrays in item-major/bin order) and the
    per-position reliability ladders ``R_i(0..K_i)`` used for O(L)
    expectation checks.
    """

    __slots__ = ("edge_item", "edge_node", "edge_cost", "edge_demand",
                 "max_node", "cost_sum", "rel_ladders", "universes")

    def __init__(self, problem: AugmentationProblem) -> None:
        plan = plan_of(problem)
        if plan is not None:
            # Edge universe recorded at generation time by the item kernel --
            # the same item-major/bin-order arrays the loop below derives.
            if plan.min_node < 0:
                raise ValidationError(
                    f"negative cloudlet id {plan.min_node} unsupported by the "
                    "incremental engine"
                )
            self.edge_item = plan.edge_item
            self.edge_node = plan.edge_node
            self.edge_cost = plan.edge_cost
            self.edge_demand = plan.edge_demand
            self.max_node = plan.max_node
        else:
            edge_item: list[int] = []
            edge_node: list[int] = []
            edge_cost: list[float] = []
            edge_demand: list[float] = []
            for idx, item in enumerate(problem.items):
                for u in item.bins:
                    if u < 0:
                        raise ValidationError(
                            f"negative cloudlet id {u} unsupported by the "
                            "incremental engine"
                        )
                    edge_item.append(idx)
                    edge_node.append(u)
                    edge_cost.append(item.cost)
                    edge_demand.append(item.demand)
            self.edge_item = np.asarray(edge_item, dtype=np.intp)
            self.edge_node = np.asarray(edge_node, dtype=np.intp)
            self.edge_cost = np.asarray(edge_cost, dtype=np.float64)
            self.edge_demand = np.asarray(edge_demand, dtype=np.float64)
            self.max_node = max(edge_node, default=-1)
        # One float for the whole solve: the warm-started solver derives its
        # constant dummy cost B from it, so it must come from the shared
        # statics array (same array -> same np.sum) for engine invariance.
        self.cost_sum = float(np.sum(self.edge_cost))
        per_position = [0] * problem.request.chain.length
        for item in problem.items:
            if item.k > per_position[item.position]:
                per_position[item.position] = item.k
        self.rel_ladders = tuple(
            reliability_ladder(r, k_max)
            for r, k_max in zip(problem.reliabilities, per_position)
        )
        # CSR presorts of the edge universe, one per ledger node order --
        # built lazily by warm_solver_for, shared by every solver on this
        # problem so the O(E log E) lexsort happens once, not per solve.
        self.universes: dict[tuple[int, ...], UniverseIndex] = {}

    def universe_for(self, nodes: Sequence[int]) -> UniverseIndex:
        """The memoized :class:`UniverseIndex` for one ledger node order."""
        key = tuple(nodes)
        uni = self.universes.get(key)
        if uni is None:
            uni = self.universes[key] = UniverseIndex(
                self.edge_node, self.edge_item, self.edge_cost, nodes
            )
        return uni


_STATICS: "WeakKeyDictionary[AugmentationProblem, _ProblemStatics]" = (
    WeakKeyDictionary()
)


def _statics(problem: AugmentationProblem) -> _ProblemStatics:
    statics = _STATICS.get(problem)
    if statics is None:
        statics = _STATICS[problem] = _ProblemStatics(problem)
    return statics


def warm_solver_for(
    problem: AugmentationProblem,
    ledger: CapacityLedger,
    arena: "MatrixArena | None" = None,
    universe_cost_sum: float | None = None,
) -> DualReusingSolver:
    """A :class:`DualReusingSolver` sized for one solve's global id spaces.

    Both round engines construct their solver through this factory so the
    dual vectors (keyed by global cloudlet id / item index) and the constant
    dummy cost ``B`` (from the shared statics' universe cost sum) are
    identical -- a precondition for the engines' bit-identical solves under
    the ``"warm"`` backend.  The solver also carries the problem's memoized
    :class:`UniverseIndex` for this ledger's node order, enabling the
    ``edge_idx`` fast path of ``solve_round_delta``.

    ``universe_cost_sum`` overrides the dummy-cost base ``B - 1``.  The
    streaming admission service passes a fixed dominating constant here so
    that a solve over a *union* of independent requests and a solo solve of
    any one of them share the exact same ``B`` (and hence bit-identical
    tie-breaking within each request's connected component).
    """
    statics = _statics(problem)
    nodes = ledger.nodes
    for v in nodes:
        if v < 0:
            raise ValidationError(
                f"negative cloudlet id {v} unsupported by the warm-started solver"
            )
    node_space = max(max(nodes, default=-1), statics.max_node) + 1
    n_items = len(problem.items)
    base = statics.cost_sum if universe_cost_sum is None else float(universe_cost_sum)
    return DualReusingSolver(
        node_space, n_items, base, arena=arena,
        universe=statics.universe_for(nodes),
    )


class RoundState:
    """Incrementally maintained state of Algorithm 2's matching rounds.

    Parameters
    ----------
    problem:
        The augmentation instance being solved.
    ledger:
        The live capacity ledger the caller commits placements against.
        The engine assumes residuals only decrease while it is active
        (true for Algorithm 2, which never rolls back inside a solve).
    rebuild_every:
        Refresh the full residual snapshot from the ledger every this-many
        rounds (``0`` = pure delta maintenance, the default).
    arena:
        Optional :class:`repro.kernels.arena.MatrixArena` to lease the
        residual snapshot and scratch index maps from instead of allocating
        fresh arrays per solve.  Must be this thread's arena
        (:func:`repro.kernels.arena.thread_arena`) -- see the locality
        contract in ``docs/performance.md``.  Every leased element is
        (re)initialised below before any read, so arena solves are
        bit-identical to ``arena=None`` solves.
    """

    def __init__(
        self,
        problem: AugmentationProblem,
        ledger: CapacityLedger,
        rebuild_every: int = 0,
        arena: MatrixArena | None = None,
    ):
        if rebuild_every < 0:
            raise ValidationError(f"rebuild_every must be >= 0, got {rebuild_every}")
        self._ledger = ledger
        self._rebuild_every = rebuild_every
        self._items = problem.items
        self._nodes: list[int] = ledger.nodes  # fixed ledger ordering
        for v in self._nodes:
            if v < 0:
                raise ValidationError(
                    f"negative cloudlet id {v} unsupported by the incremental engine"
                )
        statics = _statics(problem)
        self._edge_item = statics.edge_item
        self._edge_node = statics.edge_node
        self._edge_cost = statics.edge_cost
        self._edge_demand = statics.edge_demand
        self._rel_ladders = statics.rel_ladders
        n_items = len(self._items)
        size = max(max(self._nodes, default=-1), statics.max_node) + 1
        if arena is not None:
            self._item_alive = arena.take("item_alive", n_items, bool)
            self._item_alive[:] = True
            # Residual snapshot, delta-maintained: exact ledger floats,
            # refreshed only for touched nodes (plus the full refresh of
            # rebuild_every).  Zero-filled like the fresh allocation: gap
            # entries (non-ledger nodes below `size`) are read by
            # build_edges' `res[v] > 0` test and must not hold stale floats.
            self._res = arena.take("res", size, np.float64)
            self._res[:] = 0.0
            # Scratch index maps, overwritten each round before use.
            self._node_to_row = arena.take("node_to_row", size, np.intp)
            self._col_of = arena.take("col_of", n_items, np.intp)
            self._arange = arena.arange(max(size, n_items))
        else:
            self._item_alive = np.ones(n_items, dtype=bool)
            self._res = np.zeros(size, dtype=np.float64)
            self._node_to_row = np.zeros(size, dtype=np.intp)
            self._col_of = np.zeros(n_items, dtype=np.intp)
            self._arange = np.arange(max(size, n_items), dtype=np.intp)
        self._num_alive = n_items
        self._refresh_residuals()
        self._rounds_applied = 0
        self._last_edge_idx: np.ndarray | None = None

    # -- queries --------------------------------------------------------------
    @property
    def has_items(self) -> bool:
        """Whether any unmatched item remains."""
        return self._num_alive > 0

    @property
    def last_edge_idx(self) -> np.ndarray | None:
        """Universe positions of the live edges of the last built round.

        Parallel to the edge arrays :meth:`build_edges` returned (it already
        computes them to gather the arrays); feeds the ``edge_idx`` fast
        path of :meth:`repro.matching.warmstart.DualReusingSolver.solve_round_delta`.
        ``None`` before the first :meth:`build_edges` call.
        """
        return self._last_edge_idx

    @property
    def reliability_ladders(self) -> tuple[tuple[float, ...], ...]:
        """Per-position ladders ``R_i(0..K_i)``; ``ladders[i][k]`` equals
        ``function_reliability(r_i, k)`` exactly."""
        return self._rel_ladders

    def reliability_from_counts(self, counts: Sequence[int]) -> float:
        """``u_j`` for per-position backup counts, via the cached ladders.

        Bit-identical to ``problem.reliability_from_counts`` (same factors,
        same multiplication order).
        """
        product = 1.0
        for ladder, count in zip(self._rel_ladders, counts):
            product *= ladder[count]
        return product

    # -- round construction ----------------------------------------------------
    def build_edges(
        self,
    ) -> tuple[list[int], np.ndarray, np.ndarray, np.ndarray, list[float]]:
        """The round's graph: ``(rows, cols, edge_rows, edge_cols, edge_costs)``.

        ``rows`` are cloudlet node ids (positive residual, ledger order),
        ``cols`` are item indices (generation order), and the three parallel
        edge arrays enumerate edges item-major in each item's bin order --
        exactly the sequence the full-rebuild path produces, so the derived
        pad value and padded matrix are bit-identical.
        """
        res = self._res
        rows = [v for v in self._nodes if res[v] > 0.0]
        arange = self._arange
        node_to_row = self._node_to_row
        node_to_row[rows] = arange[: len(rows)]
        alive = self._item_alive
        cols = np.nonzero(alive)[0]
        col_of = self._col_of
        col_of[cols] = arange[: len(cols)]
        res_e = res[self._edge_node]
        ok = res_e > 0.0
        ok &= (res_e + EPS) >= self._edge_demand
        ok &= alive[self._edge_item]
        idx = np.nonzero(ok)[0]
        self._last_edge_idx = idx
        edge_rows = node_to_row[self._edge_node[idx]]
        edge_cols = col_of[self._edge_item[idx]]
        edge_costs = self._edge_cost[idx].tolist()
        return rows, cols, edge_rows, edge_cols, edge_costs

    # -- delta application -----------------------------------------------------
    def apply_round(self, touched: Sequence[int], matched: Sequence[int]) -> None:
        """Commit one round's outcome to the incremental state.

        Parameters
        ----------
        touched:
            Cloudlet node ids that received an allocation this round (the
            only nodes whose residual -- and hence edge set -- can have
            changed).
        matched:
            Item indices placed this round; they leave ``I``.
        """
        alive = self._item_alive
        for idx in matched:
            if alive[idx]:
                alive[idx] = False
                self._num_alive -= 1
        self._rounds_applied += 1
        if self._rebuild_every and self._rounds_applied % self._rebuild_every == 0:
            self._refresh_residuals()
            return
        residual = self._ledger.residual
        res = self._res
        for u in set(touched):
            res[u] = residual(u)

    def _refresh_residuals(self) -> None:
        """Re-read every node's residual from the ledger (the fallback path;
        also the initialisation)."""
        residual = self._ledger.residual
        res = self._res
        for v in self._nodes:
            res[v] = residual(v)
