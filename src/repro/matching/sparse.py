"""CSR sparse backend for min-cost maximum matching.

The dense reduction of :mod:`repro.matching.mincost` pads the ``n x m``
bipartite structure to an ``(n + m) x (n + m)`` square matrix even though
Algorithm 2's round graphs are sparse: an item only connects to the
cloudlets of ``N_l^+(v_i)`` (Lemma 4.2 prefixes), so the real edge count is
a small fraction of ``n * m`` and a vanishing fraction of ``(n + m)^2``.
This backend hands :func:`scipy.sparse.csgraph.min_weight_full_bipartite_matching`
the real edge set only, in CSR form, and encodes max-cardinality on the
sparse structure instead of via dense big-M blocks:

* **dummy-column trick** -- every left node ``r`` gets one private dummy
  column with cost ``B`` larger than the sum of all real edge costs.  The
  extended graph always admits a row-perfect matching (component-wise
  feasibility is automatic: a row whose component has no free real column
  takes its dummy), and since ``B`` dominates any achievable real-cost
  difference, minimising the extended objective maximises real cardinality
  first and real cost second -- the same objective ordering as the dense
  padding, on ``E + n`` stored entries instead of ``(n + m)^2``.
* **positivity shift** -- ``min_weight_full_bipartite_matching`` drops
  explicitly stored zeros from the CSR structure (a zero-cost edge would
  silently become a forbidden pair), so all costs are shifted by a constant
  that makes them ``>= 1``.  A uniform shift adds ``k * shift`` to every
  cardinality-``k`` matching, so the set of min-cost maximum matchings is
  unchanged; decoded edges report the *original* cost floats, looked up by
  edge identity (never ``(cost + shift) - shift``, which need not round
  back bit-exactly).

Exactness contract: identical matching **cardinality and total cost** to
the dense backends on every input (optimal is optimal); the particular
pairing may permute within equal-cost matchings, as scipy's internal tie
handling differs from the dense solver's.  ``tests/test_matching_sparse.py``
asserts the cardinality/cost agreement across all backends, and the
differential suite pins each backend's full-solve determinism.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import min_weight_full_bipartite_matching

from repro.util.errors import ValidationError


def sparse_min_cost_max_matching(
    n_rows: int,
    n_cols: int,
    edge_rows: np.ndarray,
    edge_cols: np.ndarray,
    edge_costs: np.ndarray,
) -> list[tuple[int, int, float]]:
    """Min-cost maximum matching on the real (sparse) edge set.

    Parameters
    ----------
    n_rows, n_cols:
        Sizes of the two node sets.
    edge_rows, edge_cols, edge_costs:
        Parallel arrays of existing edges (pre-validated by the caller:
        indices in range, costs finite, ``(row, col)`` pairs unique).

    Returns
    -------
    list[tuple[int, int, float]]
        Matched ``(row, col, cost)`` triples sorted by row; maximum
        cardinality, minimum total cost among maximum matchings.
    """
    if n_rows == 0 or n_cols == 0:
        return []
    costs = np.asarray(edge_costs, dtype=np.float64)
    if costs.size == 0:
        return []
    rows = np.asarray(edge_rows, dtype=np.intp)
    cols = np.asarray(edge_cols, dtype=np.intp)

    # Shift so every stored weight is >= 1 (explicit zeros are dropped by
    # the scipy matcher) and derive the dominating dummy cost from the
    # shifted range.
    low = float(costs.min())
    shift = 1.0 - low if low < 1.0 else 0.0
    shifted = costs + shift if shift else costs
    shifted_sum = float(shifted.sum())
    big = shifted_sum + 1.0
    if not np.isfinite(big) or big <= shifted_sum:
        raise ValidationError(
            "edge cost magnitudes too large for a dominating dummy cost "
            f"(shifted sum {shifted_sum!r})"
        )

    data = np.concatenate([shifted, np.full(n_rows, big)])
    coo_rows = np.concatenate([rows, np.arange(n_rows, dtype=np.intp)])
    coo_cols = np.concatenate([cols, n_cols + np.arange(n_rows, dtype=np.intp)])
    biadjacency = csr_matrix(
        (data, (coo_rows, coo_cols)), shape=(n_rows, n_cols + n_rows)
    )
    matched_rows, matched_cols = min_weight_full_bipartite_matching(biadjacency)

    # Decode: rows assigned to their dummy column are unmatched; real
    # pairs get their original cost float back by (row, col) identity.
    real = matched_cols < n_cols
    out_rows = np.asarray(matched_rows[real], dtype=np.intp)
    out_cols = np.asarray(matched_cols[real], dtype=np.intp)
    if out_rows.size == 0:  # pragma: no cover - edges imply a non-empty matching
        return []
    keys = rows * n_cols + cols
    key_order = np.argsort(keys, kind="stable")
    positions = key_order[
        np.searchsorted(keys[key_order], out_rows * n_cols + out_cols)
    ]
    out_costs = costs[positions]
    order = np.argsort(out_rows, kind="stable")
    return [
        (int(r), int(c), float(w))
        for r, c, w in zip(out_rows[order], out_cols[order], out_costs[order])
    ]


__all__ = ["sparse_min_cost_max_matching"]
