"""MEC network substrate: graph model, capacities, neighborhoods, VNF/SFC model.

This subpackage implements the system model of Section 3 of the paper:

* :class:`~repro.netmodel.graph.MECNetwork` -- the undirected AP graph
  ``G = (V, E)`` with a subset of nodes co-located with cloudlets of given
  computing capacity;
* :mod:`~repro.netmodel.neighborhoods` -- ``l``-hop neighborhood sets
  ``N_l(v)`` / ``N_l^+(v)`` computed by breadth-first search and cached;
* :class:`~repro.netmodel.capacity.CapacityLedger` -- residual-capacity
  accounting with an allocation journal, rollback, and optional violation
  tracking (needed to *measure* the randomized algorithm's violations);
* :mod:`~repro.netmodel.vnf` -- network function types ``f_i`` with demand
  ``c(f_i)`` and reliability ``r_i``, service function chains, and requests
  with reliability expectations ``rho_j``.
"""

from repro.netmodel.capacity import Allocation, CapacityLedger
from repro.netmodel.graph import MECNetwork
from repro.netmodel.neighborhoods import NeighborhoodIndex
from repro.netmodel.vnf import (
    Request,
    ServiceFunctionChain,
    VNFCatalog,
    VNFType,
)

__all__ = [
    "Allocation",
    "CapacityLedger",
    "MECNetwork",
    "NeighborhoodIndex",
    "Request",
    "ServiceFunctionChain",
    "VNFCatalog",
    "VNFType",
]
