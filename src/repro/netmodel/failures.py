"""Monte-Carlo failure simulation of placed service function chains.

The paper's reliability algebra (Eq. 1) rests on two modelling assumptions:
VNF instances fail independently, and a function is *up* iff at least one
of its instances (primary or secondary) is up.  This module simulates that
failure model directly -- draw an up/down state for every placed instance,
evaluate chain liveness, repeat -- so the closed forms can be validated
against an independent mechanism, and so users can study questions the
algebra does not answer (e.g. correlated cloudlet failures, which break the
independence assumption the literature adopts).

Two failure modes:

* **instance failures** (the paper's model): every instance of function
  ``f_i`` is independently up with probability ``r_i``;
* **cloudlet failures** (extension): each cloudlet is additionally down
  with a given probability, taking all instances it hosts with it --
  placements that spread backups across cloudlets survive this, co-located
  ones do not.  This quantifies the placement-diversity benefit that the
  independence-based algebra cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.problem import AugmentationProblem
from repro.core.solution import AugmentationSolution
from repro.util.errors import ValidationError
from repro.util.rng import RandomState, as_rng


@dataclass(frozen=True)
class SimulationEstimate:
    """A Monte-Carlo reliability estimate with its sampling error.

    Attributes
    ----------
    reliability:
        Fraction of simulated worlds in which the whole chain was alive.
    std_error:
        Binomial standard error of the estimate.
    trials:
        Number of simulated worlds.
    """

    reliability: float
    std_error: float
    trials: int

    def within(self, expected: float, sigmas: float = 4.0) -> bool:
        """Whether ``expected`` lies within ``sigmas`` standard errors."""
        return abs(self.reliability - expected) <= sigmas * max(self.std_error, 1e-12)


def _instance_layout(
    problem: AugmentationProblem, solution: AugmentationSolution
) -> list[list[tuple[int, float]]]:
    """Per chain position: the (cloudlet, instance reliability) of every
    placed instance, primary first."""
    chain = problem.request.chain
    layout: list[list[tuple[int, float]]] = []
    for position, func in enumerate(chain):
        instances = [(problem.primary_placement[position], func.reliability)]
        instances.extend(
            (p.bin, func.reliability)
            for p in solution.placements
            if p.position == position
        )
        layout.append(instances)
    return layout


def simulate_chain_reliability(
    problem: AugmentationProblem,
    solution: AugmentationSolution,
    trials: int = 10_000,
    cloudlet_failure_prob: float | Mapping[int, float] = 0.0,
    reliability_jitter: float = 0.0,
    rng: RandomState = None,
) -> SimulationEstimate:
    """Estimate the chain's reliability by direct failure simulation.

    Parameters
    ----------
    problem, solution:
        The placed chain to evaluate (primaries from the problem, backups
        from the solution).
    trials:
        Number of simulated worlds.
    cloudlet_failure_prob:
        Probability that a cloudlet is down in a world (scalar applied to
        every cloudlet, or per-cloudlet mapping).  0 reproduces the paper's
        instance-only model, where the estimate converges to
        ``prod_i R_i(m_i)`` (Eq. 1).
    reliability_jitter:
        Robustness probe for the identical-reliability assumption the
        paper adopts: each placed *instance* gets an individual reliability
        ``r * (1 + U(-jitter, +jitter))`` (clipped to (0, 1)), drawn once
        per call.  0 keeps the homogeneous model.
    rng:
        Seed or generator.

    Returns
    -------
    SimulationEstimate
        Estimated reliability and its standard error.
    """
    if trials <= 0:
        raise ValidationError(f"trials must be positive, got {trials}")
    if not (0.0 <= reliability_jitter < 1.0):
        raise ValidationError(
            f"reliability_jitter must be in [0, 1), got {reliability_jitter}"
        )
    gen = as_rng(rng)
    layout = _instance_layout(problem, solution)
    if reliability_jitter > 0.0:
        layout = [
            [
                (
                    u,
                    float(
                        np.clip(
                            r * (1.0 + gen.uniform(-reliability_jitter, reliability_jitter)),
                            1e-9,
                            1.0,
                        )
                    ),
                )
                for u, r in instances
            ]
            for instances in layout
        ]

    cloudlets = sorted({u for instances in layout for u, _r in instances})
    if isinstance(cloudlet_failure_prob, Mapping):
        cloudlet_down = {u: float(cloudlet_failure_prob.get(u, 0.0)) for u in cloudlets}
    else:
        cloudlet_down = {u: float(cloudlet_failure_prob) for u in cloudlets}
    for u, p in cloudlet_down.items():
        if not (0.0 <= p < 1.0):
            raise ValidationError(f"cloudlet {u} failure probability {p} not in [0, 1)")

    alive_count = 0
    # Vectorised worlds: one matrix of instance-up draws per position.
    cloudlet_idx = {u: i for i, u in enumerate(cloudlets)}
    down_probs = np.array([cloudlet_down[u] for u in cloudlets])
    cloudlet_up = gen.uniform(size=(trials, len(cloudlets))) >= down_probs

    chain_alive = np.ones(trials, dtype=bool)
    for instances in layout:
        up_any = np.zeros(trials, dtype=bool)
        for u, r in instances:
            instance_up = gen.uniform(size=trials) < r
            up_any |= instance_up & cloudlet_up[:, cloudlet_idx[u]]
        chain_alive &= up_any
    alive_count = int(chain_alive.sum())

    reliability = alive_count / trials
    std_error = float(np.sqrt(max(reliability * (1 - reliability), 1e-12) / trials))
    return SimulationEstimate(reliability=reliability, std_error=std_error, trials=trials)


def reliability_of_live_counts(
    reliabilities: Sequence[float], counts: Sequence[int]
) -> float:
    """Eq. 1 evaluated on per-position live instance counts.

    ``prod_i (1 - (1 - r_i)^{n_i})`` with ``n_i = counts[i]``; 0.0 as soon
    as any position has no live instance.  This is an *independent*
    implementation of :meth:`repro.resilience.state.CommittedChain.live_reliability`
    kept in the model layer on purpose: the chaos invariant auditor
    re-derives every chain's achieved reliability through this function and
    requires exact (``==``) agreement with the runtime's own bookkeeping,
    so a bug in either copy of the algebra trips the audit instead of
    passing silently.
    """
    if len(reliabilities) != len(counts):
        raise ValidationError(
            f"got {len(reliabilities)} reliabilities for {len(counts)} positions"
        )
    reliability = 1.0
    for r, n in zip(reliabilities, counts):
        if n < 0:
            raise ValidationError(f"live count must be >= 0, got {n}")
        if n == 0:
            return 0.0
        reliability *= 1.0 - (1.0 - r) ** n
    return reliability


def diversity_score(
    problem: AugmentationProblem, solution: AugmentationSolution
) -> list[float]:
    """Per-position placement diversity: fraction of the position's
    instances on *distinct* cloudlets (1.0 = fully spread, 1/n = all
    co-located).  Under correlated cloudlet failures, higher is better."""
    scores: list[float] = []
    for instances in _instance_layout(problem, solution):
        total = len(instances)
        distinct = len({u for u, _r in instances})
        scores.append(distinct / total)
    return scores


def co_failure_exposure(
    problem: AugmentationProblem,
    solution: AugmentationSolution,
    positions: Sequence[int] | None = None,
) -> dict[int, int]:
    """For each cloudlet: how many chain positions would lose *all* their
    instances if that cloudlet alone failed (the chain dies if any position
    reports >= 1 here and that cloudlet goes down)."""
    layout = _instance_layout(problem, solution)
    if positions is None:
        positions = range(len(layout))
    exposure: dict[int, int] = {}
    for position in positions:
        hosts = {u for u, _r in layout[position]}
        if len(hosts) == 1:
            (u,) = hosts
            exposure[u] = exposure.get(u, 0) + 1
    return exposure
