"""Virtual network functions, service function chains, and requests.

Terminology follows Section 3 of the paper:

* a :class:`VNFType` is a *network function* ``f_i`` from the global set
  ``F = {f_1, ..., f_|F|}``; instantiating it in a VM consumes ``c(f_i)``
  computing resource (MHz in the paper's experiments) and a single instance
  has reliability ``r_i`` with ``0 < r_i <= 1`` regardless of the hosting
  cloudlet (the identical-reliability assumption adopted in Section 3.1);
* a :class:`ServiceFunctionChain` is the ordered chain ``SFC_j`` of a
  request -- functions may repeat within a chain, and each *position* in the
  chain has its own primary instance and its own backups;
* a :class:`Request` couples a chain with a reliability expectation
  ``rho_j`` and (optionally) source/destination APs used by the admission
  framework of Section 4.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.util.errors import ValidationError
from repro.util.rng import RandomState, as_rng


@dataclass(frozen=True)
class VNFType:
    """A network function ``f`` with computing demand and instance reliability.

    Attributes
    ----------
    name:
        Unique identifier within a :class:`VNFCatalog` (e.g. ``"f7"``, or a
        descriptive name such as ``"firewall"`` in the examples).
    demand:
        Computing resource ``c(f)`` consumed by one VNF instance (MHz).
    reliability:
        Reliability ``r`` of a single instance, ``0 < r <= 1``.
    """

    name: str
    demand: float
    reliability: float

    def __post_init__(self) -> None:
        if self.demand <= 0:
            raise ValidationError(f"VNF {self.name!r}: demand must be > 0, got {self.demand}")
        if not (0.0 < self.reliability <= 1.0):
            raise ValidationError(
                f"VNF {self.name!r}: reliability must be in (0, 1], got {self.reliability}"
            )

    @property
    def log_unreliability(self) -> float:
        """``log(1 - r)``, or ``-inf`` when ``r == 1`` (a perfect instance)."""
        if self.reliability >= 1.0:
            return -math.inf
        return math.log1p(-self.reliability)

    def with_reliability(self, reliability: float) -> "VNFType":
        """Return a copy of this type with a different instance reliability."""
        return VNFType(self.name, self.demand, reliability)


class VNFCatalog:
    """The global set ``F`` of network function types.

    The catalog owns the mapping from function names to :class:`VNFType`
    objects and provides the random draws used by the experiment workloads
    (``|F| = 30`` types with demands in ``U[200, 400]`` MHz in Section 7.1).
    """

    def __init__(self, types: Sequence[VNFType]):
        if not types:
            raise ValidationError("VNFCatalog requires at least one VNF type")
        self._types: dict[str, VNFType] = {}
        for t in types:
            if t.name in self._types:
                raise ValidationError(f"duplicate VNF type name {t.name!r}")
            self._types[t.name] = t
        self._order: list[str] = [t.name for t in types]

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[VNFType]:
        return (self._types[name] for name in self._order)

    def __contains__(self, name: object) -> bool:
        return name in self._types

    def __getitem__(self, name: str) -> VNFType:
        try:
            return self._types[name]
        except KeyError:
            raise KeyError(f"unknown VNF type {name!r}") from None

    @property
    def names(self) -> list[str]:
        """Type names in catalog order."""
        return list(self._order)

    # -- constructors --------------------------------------------------------
    @classmethod
    def random(
        cls,
        num_types: int = 30,
        demand_range: tuple[float, float] = (200.0, 400.0),
        reliability_range: tuple[float, float] = (0.8, 0.9),
        rng: RandomState = None,
    ) -> "VNFCatalog":
        """Draw a catalog matching the paper's experimental settings.

        Section 7.1: ``|F| = 30`` network function types, per-function
        computing demand uniform in ``[200, 400]`` MHz, per-function instance
        reliability uniform in ``[0.8, 0.9]`` (varied per experiment).
        """
        if num_types <= 0:
            raise ValidationError(f"num_types must be positive, got {num_types}")
        lo_d, hi_d = demand_range
        lo_r, hi_r = reliability_range
        if not (0.0 < lo_r <= hi_r <= 1.0):
            raise ValidationError(f"invalid reliability range {reliability_range}")
        if not (0.0 < lo_d <= hi_d):
            raise ValidationError(f"invalid demand range {demand_range}")
        gen = as_rng(rng)
        types = [
            VNFType(
                name=f"f{i}",
                demand=float(gen.uniform(lo_d, hi_d)),
                reliability=float(gen.uniform(lo_r, hi_r)),
            )
            for i in range(num_types)
        ]
        return cls(types)

    def sample_chain(
        self,
        length: int,
        rng: RandomState = None,
        distinct: bool = False,
    ) -> "ServiceFunctionChain":
        """Draw a random chain of ``length`` functions from the catalog.

        Section 7.1 draws each function uniformly from ``F``; functions may
        repeat within a chain unless ``distinct=True`` is requested (useful
        for tests that need unambiguous per-function accounting).
        """
        if length <= 0:
            raise ValidationError(f"chain length must be positive, got {length}")
        gen = as_rng(rng)
        if distinct:
            if length > len(self):
                raise ValidationError(
                    f"cannot draw {length} distinct functions from a catalog of {len(self)}"
                )
            idx = gen.choice(len(self), size=length, replace=False)
        else:
            idx = gen.integers(0, len(self), size=length)
        funcs = [self._types[self._order[int(i)]] for i in idx]
        return ServiceFunctionChain(funcs)


@dataclass(frozen=True)
class ServiceFunctionChain:
    """An ordered service function chain ``SFC_j = (f_1, ..., f_L)``.

    Chain *positions* are the unit of placement: if the same function type
    appears twice in a chain, each occurrence has its own primary instance
    and is augmented independently, exactly as the per-``i`` indexing of the
    paper's formulation treats it.
    """

    functions: tuple[VNFType, ...]

    def __init__(self, functions: Sequence[VNFType]):
        if not functions:
            raise ValidationError("a service function chain must contain >= 1 function")
        object.__setattr__(self, "functions", tuple(functions))

    def __len__(self) -> int:
        return len(self.functions)

    def __iter__(self) -> Iterator[VNFType]:
        return iter(self.functions)

    def __getitem__(self, i: int) -> VNFType:
        return self.functions[i]

    @property
    def length(self) -> int:
        """``L_j = |SFC_j|``."""
        return len(self.functions)

    @property
    def total_demand(self) -> float:
        """Computing demand of one full set of primary instances."""
        return sum(f.demand for f in self.functions)

    def primaries_reliability(self) -> float:
        """Reliability ``prod_i r_i`` of the chain with primaries only (Eq. page 3)."""
        prod = 1.0
        for f in self.functions:
            prod *= f.reliability
        return prod

    def log_budget(self, rho: float) -> float:
        """The cost budget ``C = -log(rho)`` of Section 4.2 for expectation ``rho``."""
        if not (0.0 < rho <= 1.0):
            raise ValidationError(f"reliability expectation must be in (0, 1], got {rho}")
        return -math.log(rho)


@dataclass(frozen=True)
class Request:
    """An admitted user request with an SFC and a reliability expectation.

    Attributes
    ----------
    name:
        Identifier used in logs and result records.
    chain:
        The request's service function chain ``SFC_j``.
    expectation:
        Reliability expectation ``rho_j`` in ``(0, 1]``.  The augmentation
        budget is ``C = -log(rho_j)``.
    source, destination:
        Optional AP node ids of the request's traffic endpoints; only the
        admission framework (Section 4.1) uses them.
    """

    name: str
    chain: ServiceFunctionChain
    expectation: float
    source: int | None = None
    destination: int | None = None

    def __post_init__(self) -> None:
        if not (0.0 < self.expectation <= 1.0):
            raise ValidationError(
                f"request {self.name!r}: expectation must be in (0, 1], got {self.expectation}"
            )

    @property
    def budget(self) -> float:
        """``C = -log(rho_j)`` -- the total-cost budget of the BMCGAP reduction."""
        return self.chain.log_budget(self.expectation)

    def meets_expectation(self, reliability: float) -> bool:
        """Whether an achieved reliability satisfies ``rho_j`` (with float slack)."""
        return reliability >= self.expectation - 1e-12
