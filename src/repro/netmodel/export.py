"""Graphviz DOT export of networks and placements.

The offline environment has no plotting stack, but Graphviz DOT is plain
text: users can render the exported file wherever ``dot`` is available.
Two exports:

* :func:`network_to_dot` -- the AP graph with cloudlets highlighted and
  capacity labels;
* :func:`placement_to_dot` -- a placed chain on top of the network:
  primaries and backups colour-coded per chain position, with the
  ``l``-hop placement edges drawn from each primary to its backups.

The DOT text is deterministic (sorted nodes/edges) so exports are
diff-friendly and snapshot-testable.
"""

from __future__ import annotations

from repro.core.problem import AugmentationProblem
from repro.core.solution import AugmentationSolution
from repro.netmodel.graph import MECNetwork

#: Fill colours cycled over chain positions in placement exports.
POSITION_COLORS = (
    "#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3",
    "#fdb462", "#b3de69", "#fccde5", "#d9d9d9", "#bc80bd",
)


def _escape(text: str) -> str:
    return text.replace('"', r"\"")


def network_to_dot(network: MECNetwork, name: str = "mec") -> str:
    """Render the AP graph as an undirected Graphviz document.

    Cloudlets are boxes labelled with their capacity; plain APs are small
    circles.
    """
    lines = [f'graph "{_escape(name)}" {{']
    lines.append("  node [fontsize=10];")
    for v in sorted(network.graph.nodes):
        if network.is_cloudlet(v):
            label = f"{v}\\n{network.capacity(v):.0f} MHz"
            lines.append(
                f'  {v} [shape=box, style=filled, fillcolor="#a6cee3", '
                f'label="{label}"];'
            )
        else:
            lines.append(f'  {v} [shape=circle, width=0.2, label="{v}"];')
    for u, v in sorted(tuple(sorted(e)) for e in network.graph.edges):
        lines.append(f"  {u} -- {v};")
    lines.append("}")
    return "\n".join(lines)


def placement_to_dot(
    problem: AugmentationProblem,
    solution: AugmentationSolution,
    name: str = "placement",
) -> str:
    """Render a placed chain over the network.

    Per chain position ``i`` (colour-coded): the primary's node gets a
    double border, each backup placement adds a dashed edge from the
    primary's cloudlet to the hosting cloudlet, labelled ``f_i x count``.
    """
    network = problem.network
    chain = problem.request.chain

    primaries = {}
    for position, v in enumerate(problem.primary_placement):
        primaries.setdefault(v, []).append(position)
    backup_edges: dict[tuple[int, int, int], int] = {}  # (pos, from, to) -> count
    for p in solution.placements:
        key = (p.position, problem.primary_placement[p.position], p.bin)
        backup_edges[key] = backup_edges.get(key, 0) + 1

    lines = [f'graph "{_escape(name)}" {{']
    lines.append("  node [fontsize=10];")
    for v in sorted(network.graph.nodes):
        attrs = []
        if network.is_cloudlet(v):
            attrs.append("shape=box")
            attrs.append("style=filled")
            if v in primaries:
                roles = ",".join(
                    f"{chain[i].name}" for i in sorted(primaries[v])
                )
                color = POSITION_COLORS[min(primaries[v]) % len(POSITION_COLORS)]
                attrs.append(f'fillcolor="{color}"')
                attrs.append("peripheries=2")
                attrs.append(f'label="{v}\\nprimary: {_escape(roles)}"')
            else:
                attrs.append('fillcolor="#f0f0f0"')
                attrs.append(f'label="{v}"')
        else:
            attrs.append("shape=circle")
            attrs.append("width=0.2")
            attrs.append(f'label="{v}"')
        lines.append(f"  {v} [{', '.join(attrs)}];")

    for u, v in sorted(tuple(sorted(e)) for e in network.graph.edges):
        lines.append(f'  {u} -- {v} [color="#cccccc"];')

    for (position, src, dst), count in sorted(backup_edges.items()):
        color = POSITION_COLORS[position % len(POSITION_COLORS)]
        label = f"{chain[position].name} x{count}"
        if src == dst:
            # same-cloudlet backups: annotate the node with a self-loop
            lines.append(
                f'  {src} -- {dst} [label="{_escape(label)}", color="{color}", '
                f"style=dashed];"
            )
        else:
            lines.append(
                f'  {src} -- {dst} [label="{_escape(label)}", color="{color}", '
                f"style=dashed, penwidth=2];"
            )
    lines.append("}")
    return "\n".join(lines)
