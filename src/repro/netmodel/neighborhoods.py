"""``l``-hop neighborhood sets ``N_l(v)`` and ``N_l^+(v)``.

Section 3 defines ``N_l(v)`` as the set of nodes within ``l`` hops of ``v``
(excluding ``v`` itself) and ``N_l^+(v) = N_l(v) ∪ {v}``.  The placement
constraint of the augmentation problem says every secondary instance of a
primary placed at cloudlet ``v`` must live on a *cloudlet* in ``N_l^+(v)``.

:class:`NeighborhoodIndex` serves, for one radius ``l``, the neighbor sets
of every node by truncated breadth-first search, and additionally the
cloudlet-restricted sets the algorithms actually consume.  Sets are computed
*lazily* -- the BFS from a node runs on first access and is memoized -- so
a batch of requests touching a handful of primaries never pays for the
whole graph, while repeated requests on one topology share every set ever
computed (the index itself is cached per radius by
:meth:`MECNetwork.neighborhoods` and can be hoisted explicitly through
:meth:`AugmentationProblem.build`'s ``neighborhoods`` argument).  Radius
``None`` is not supported here -- the "unrestricted placement" baseline
simply uses ``radius = |V| - 1``, which reaches the whole (connected)
graph.

Two engines serve the sets (identical results; ``tests/test_kernels_csr.py``
proves it property-style against networkx):

* the array-native :class:`repro.kernels.csr.NeighborhoodKernel` (default;
  CSR adjacency + vectorized multi-source frontier expansion, shared per
  ``(graph, radius)`` so every index over one topology reuses the BFS
  work), selected whenever :func:`repro.kernels.kernels_enabled` is true;
* the legacy per-source deque BFS (:func:`bfs_within`), kept verbatim as
  the differential reference and selected by ``REPRO_KERNELS=0``.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

import networkx as nx
import numpy as np

from repro.kernels import kernels_enabled
from repro.kernels.csr import NeighborhoodKernel, neighborhood_kernel


def bfs_within(graph: nx.Graph, source: int, radius: int) -> dict[int, int]:
    """Hop distances from ``source`` to every node within ``radius`` hops.

    A plain deque-based truncated BFS; returns ``{node: distance}`` including
    ``source`` itself at distance 0.  ``radius`` must be ``>= 0`` -- a
    negative radius is always a caller bug (it used to fall through to an
    *untruncated* BFS because no level could ever equal it).
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    dist = {source: 0}
    if radius == 0:
        return dist
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        if du == radius:
            continue
        for w in graph.neighbors(u):
            if w not in dist:
                dist[w] = du + 1
                queue.append(w)
    return dist


class NeighborhoodIndex:
    """Lazily computed ``l``-hop neighborhoods of the nodes of a graph.

    The truncated BFS from a node runs on first access to that node's set
    and is memoized; the cloudlet-restricted lists are likewise derived on
    demand.  Accessors therefore cost one BFS the first time and a dict
    lookup afterwards, and an index shared across a batch of requests
    accumulates exactly the sets the batch touches.  :meth:`prefetch`
    additionally lets a caller batch the BFS of many sources into one
    vectorized frontier expansion (kernel engine only; a no-op warm-up
    loop on the legacy engine).

    Parameters
    ----------
    graph:
        The AP graph.
    radius:
        The locality radius ``l >= 0``.
    cloudlets:
        Optional iterable of cloudlet node ids; when given, the index can
        also serve the cloudlet-restricted neighbor lists used for
        secondary placement.
    kernel:
        Explicit :class:`NeighborhoodKernel` to serve reach masks from.
        Defaults to the memoized per-``(graph, radius)`` kernel when the
        array kernels are enabled, and to ``None`` (legacy deque BFS)
        otherwise.
    """

    def __init__(
        self,
        graph: nx.Graph,
        radius: int,
        cloudlets: Iterable[int] | None = None,
        kernel: NeighborhoodKernel | None = None,
    ):
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        self._graph = graph
        self._radius = radius
        self._nodes_cache: set[int] | None = None
        self._cloudlet_set = set(cloudlets) if cloudlets is not None else None
        self._closed: dict[int, frozenset[int]] = {}
        self._closed_cloudlets: dict[int, tuple[int, ...]] = {}
        # The engine choice is made here (env read once, deterministic for
        # the index lifetime), but the kernel *object* is only created on
        # first mask access: the radius <= 1 accessors run straight off the
        # adjacency dict and never need it.
        self._kernel = kernel
        self._kernel_pending = kernel is None and kernels_enabled()
        # Sorted cloudlet ids for the kernel engine; the id / node-index
        # *arrays* backing the vectorized accessors are built lazily --
        # at radius <= 1 the hot accessors never touch them.
        self._cl_list: list[int] | None = None
        self._cl_ids: np.ndarray | None = None
        self._cl_pos: np.ndarray | None = None
        # Raw adjacency dict-of-dicts: graph.adj builds an AdjacencyView per
        # access and routes membership through __getitem__; the underlying
        # dict is stable here because MECNetwork freezes its graph.
        self._adj: dict = graph._adj
        if (
            kernel is not None or self._kernel_pending
        ) and self._cloudlet_set is not None:
            adj = self._adj
            self._cl_list = sorted(v for v in self._cloudlet_set if v in adj)

    def _resolve_kernel(self) -> NeighborhoodKernel | None:
        """The serving kernel, created on first need (``None`` = legacy)."""
        if self._kernel_pending:
            self._kernel_pending = False
            self._kernel = neighborhood_kernel(self._graph, self._radius)
        return self._kernel

    @property
    def _nodes(self) -> set[int]:
        """The graph's node set (materialised on first use)."""
        nodes = self._nodes_cache
        if nodes is None:
            nodes = self._nodes_cache = set(self._graph.nodes)
        return nodes

    def _cl_positions(self) -> np.ndarray | None:
        """Node-index positions of the sorted cloudlet ids (lazy)."""
        if self._cl_pos is None and self._cl_list is not None:
            ids = self._cl_list
            index_of = self._resolve_kernel().index_of
            self._cl_ids = np.asarray(ids)
            self._cl_pos = np.fromiter(
                (index_of[v] for v in ids), dtype=np.intp, count=len(ids)
            )
        return self._cl_pos

    @property
    def radius(self) -> int:
        """The radius ``l`` this index was built for."""
        return self._radius

    @property
    def kernel(self) -> NeighborhoodKernel | None:
        """The array kernel serving this index (``None`` = legacy BFS)."""
        return self._resolve_kernel()

    def closed(self, v: int) -> frozenset[int]:
        """``N_l^+(v)`` -- nodes within ``l`` hops of ``v``, including ``v``."""
        closed = self._closed.get(v)
        if closed is None:
            kernel = self._resolve_kernel()
            if kernel is not None:
                reached = np.nonzero(kernel.mask(v))[0].tolist()
                if kernel.contiguous:
                    closed = frozenset(reached)
                else:
                    order = kernel.order
                    closed = frozenset(order[i] for i in reached)
            else:
                if v not in self._nodes:
                    raise KeyError(f"unknown node {v!r}")
                closed = frozenset(bfs_within(self._graph, v, self._radius))
            self._closed[v] = closed
        return closed

    def open(self, v: int) -> frozenset[int]:
        """``N_l(v)`` -- nodes within ``l`` hops of ``v``, excluding ``v``."""
        return self.closed(v) - {v}

    def closed_cloudlets(self, v: int) -> tuple[int, ...]:
        """Cloudlets in ``N_l^+(v)`` -- the candidate bins for secondaries of a
        primary placed at ``v``.  Requires the index to have been built with
        a ``cloudlets`` argument."""
        bins = self._closed_cloudlets.get(v)
        if bins is None:
            if self._cloudlet_set is None:
                raise KeyError(
                    f"no cloudlet-restricted neighborhood for node {v!r}; "
                    "was the index built with cloudlets?"
                )
            if self._cl_list is not None and self._radius <= 1:
                # radius <= 1 fast path: N_1^+(v) = {v} | adj(v) straight
                # off the adjacency dict -- no BFS, no mask.  _cl_list is
                # sorted, so the filtered tuple is already in the legacy
                # (sorted) order.
                adj_v = self._adj.get(v)
                if adj_v is None:
                    raise KeyError(f"unknown node {v!r}")
                if self._radius == 0:
                    bins = (v,) if v in self._cloudlet_set else ()
                else:
                    bins = tuple(
                        u for u in self._cl_list if u == v or u in adj_v
                    )
            elif self._cl_list is not None:
                # ids are pre-sorted, so the masked gather is already the
                # sorted tuple the legacy path produces.
                cl_pos = self._cl_positions()  # also materialises _cl_ids
                mask = self._kernel.mask(v)
                bins = tuple(self._cl_ids[mask[cl_pos]].tolist())
            else:
                cloudlet_set = self._cloudlet_set
                bins = tuple(
                    sorted(u for u in self.closed(v) if u in cloudlet_set)
                )
            self._closed_cloudlets[v] = bins
        return bins

    def contains(self, v: int, u: int) -> bool:
        """Whether ``u ∈ N_l^+(v)``."""
        kernel = self._resolve_kernel()
        if kernel is not None and v not in self._closed:
            mask = kernel.mask(v)  # raises KeyError for unknown v
            iu = kernel.index_of.get(u)
            return False if iu is None else bool(mask[iu])
        return u in self.closed(v)

    def degree(self, v: int) -> int:
        """``d_v = |N_l(v)|`` -- the neighborhood size used in the paper's
        complexity bounds (``d_min``/``d_max``)."""
        kernel = self._resolve_kernel()
        if kernel is not None and v not in self._closed:
            return int(kernel.mask(v).sum()) - 1
        return len(self.closed(v)) - 1

    def degree_bounds(self) -> tuple[int, int]:
        """``(d_min, d_max)`` over all nodes (materialises every set)."""
        self.prefetch(self._nodes)
        degrees = [self.degree(v) for v in self._nodes]
        return (min(degrees), max(degrees))

    # -- batch interface (array kernels) ---------------------------------------
    def prefetch(self, nodes: Iterable[int]) -> None:
        """Compute the sets of ``nodes`` ahead of access.

        On the kernel engine every not-yet-known source joins *one*
        vectorized multi-source BFS (a request chain's primaries cost a
        single frontier expansion); on the legacy engine this just warms
        the per-node memo.  Raises ``KeyError`` for unknown ids, like the
        accessors would.
        """
        kernel = self._resolve_kernel()
        if kernel is not None:
            kernel.masks_for(list(nodes))
        else:
            for v in nodes:
                self.closed(v)

    @property
    def cloudlet_ids_array(self) -> np.ndarray | None:
        """Sorted cloudlet ids as an array, or ``None`` off the kernel path.

        Aligned with the columns of :meth:`cloudlet_membership`.
        """
        if self._cl_list is None:
            return None
        self._cl_positions()
        return self._cl_ids

    @property
    def cloudlet_ids_list(self) -> list[int] | None:
        """Sorted cloudlet ids as a plain list (same alignment), or ``None``
        off the kernel path."""
        return self._cl_list

    def cloudlet_membership(self, nodes: Sequence[int]) -> np.ndarray | None:
        """Boolean matrix ``M[s, j]`` = "cloudlet ``j`` is in ``N_l^+(nodes[s])``".

        Columns follow :attr:`cloudlet_ids_array` (sorted cloudlet ids).
        Returns ``None`` when the index runs the legacy engine or was built
        without cloudlets; :mod:`repro.kernels.items` falls back to the
        scalar generation loop in that case.
        """
        cl_pos = self._cl_positions()
        if cl_pos is None:
            return None
        masks = self._kernel.masks_for(list(nodes))
        if not masks:
            return np.zeros((0, len(cl_pos)), dtype=bool)
        return np.stack(masks)[:, cl_pos]


def neighborhood_sequence(
    graph: nx.Graph, v: int, radii: Sequence[int]
) -> list[frozenset[int]]:
    """``N_l^+(v)`` for several radii at once (testing/analysis helper)."""
    return [frozenset(bfs_within(graph, v, r)) for r in radii]
