"""``l``-hop neighborhood sets ``N_l(v)`` and ``N_l^+(v)``.

Section 3 defines ``N_l(v)`` as the set of nodes within ``l`` hops of ``v``
(excluding ``v`` itself) and ``N_l^+(v) = N_l(v) ∪ {v}``.  The placement
constraint of the augmentation problem says every secondary instance of a
primary placed at cloudlet ``v`` must live on a *cloudlet* in ``N_l^+(v)``.

:class:`NeighborhoodIndex` precomputes, for one radius ``l``, the neighbor
sets of every node by truncated breadth-first search, and additionally the
cloudlet-restricted sets the algorithms actually consume.  Radius ``None`` is
not supported here -- the "unrestricted placement" baseline simply uses
``radius = |V| - 1``, which reaches the whole (connected) graph.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

import networkx as nx


def bfs_within(graph: nx.Graph, source: int, radius: int) -> dict[int, int]:
    """Hop distances from ``source`` to every node within ``radius`` hops.

    A plain deque-based truncated BFS; returns ``{node: distance}`` including
    ``source`` itself at distance 0.
    """
    dist = {source: 0}
    if radius == 0:
        return dist
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        if du == radius:
            continue
        for w in graph.neighbors(u):
            if w not in dist:
                dist[w] = du + 1
                queue.append(w)
    return dist


class NeighborhoodIndex:
    """Precomputed ``l``-hop neighborhoods of every node of a graph.

    Parameters
    ----------
    graph:
        The AP graph.
    radius:
        The locality radius ``l >= 0``.
    cloudlets:
        Optional iterable of cloudlet node ids; when given, the index also
        materialises the cloudlet-restricted neighbor lists used for
        secondary placement.
    """

    def __init__(
        self,
        graph: nx.Graph,
        radius: int,
        cloudlets: Iterable[int] | None = None,
    ):
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        self._radius = radius
        cloudlet_set = set(cloudlets) if cloudlets is not None else None

        self._closed: dict[int, frozenset[int]] = {}
        self._closed_cloudlets: dict[int, tuple[int, ...]] = {}
        for v in graph.nodes:
            reach = bfs_within(graph, v, radius)
            closed = frozenset(reach)
            self._closed[v] = closed
            if cloudlet_set is not None:
                self._closed_cloudlets[v] = tuple(
                    sorted(u for u in closed if u in cloudlet_set)
                )

    @property
    def radius(self) -> int:
        """The radius ``l`` this index was built for."""
        return self._radius

    def closed(self, v: int) -> frozenset[int]:
        """``N_l^+(v)`` -- nodes within ``l`` hops of ``v``, including ``v``."""
        try:
            return self._closed[v]
        except KeyError:
            raise KeyError(f"unknown node {v!r}") from None

    def open(self, v: int) -> frozenset[int]:
        """``N_l(v)`` -- nodes within ``l`` hops of ``v``, excluding ``v``."""
        return self.closed(v) - {v}

    def closed_cloudlets(self, v: int) -> tuple[int, ...]:
        """Cloudlets in ``N_l^+(v)`` -- the candidate bins for secondaries of a
        primary placed at ``v``.  Requires the index to have been built with
        a ``cloudlets`` argument."""
        try:
            return self._closed_cloudlets[v]
        except KeyError:
            raise KeyError(
                f"no cloudlet-restricted neighborhood for node {v!r}; "
                "was the index built with cloudlets?"
            ) from None

    def contains(self, v: int, u: int) -> bool:
        """Whether ``u ∈ N_l^+(v)``."""
        return u in self.closed(v)

    def degree(self, v: int) -> int:
        """``d_v = |N_l(v)|`` -- the neighborhood size used in the paper's
        complexity bounds (``d_min``/``d_max``)."""
        return len(self.closed(v)) - 1

    def degree_bounds(self) -> tuple[int, int]:
        """``(d_min, d_max)`` over all indexed nodes."""
        degrees = [len(s) - 1 for s in self._closed.values()]
        return (min(degrees), max(degrees))


def neighborhood_sequence(
    graph: nx.Graph, v: int, radii: Sequence[int]
) -> list[frozenset[int]]:
    """``N_l^+(v)`` for several radii at once (testing/analysis helper)."""
    return [frozenset(bfs_within(graph, v, r)) for r in radii]
