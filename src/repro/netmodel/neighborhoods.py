"""``l``-hop neighborhood sets ``N_l(v)`` and ``N_l^+(v)``.

Section 3 defines ``N_l(v)`` as the set of nodes within ``l`` hops of ``v``
(excluding ``v`` itself) and ``N_l^+(v) = N_l(v) ∪ {v}``.  The placement
constraint of the augmentation problem says every secondary instance of a
primary placed at cloudlet ``v`` must live on a *cloudlet* in ``N_l^+(v)``.

:class:`NeighborhoodIndex` serves, for one radius ``l``, the neighbor sets
of every node by truncated breadth-first search, and additionally the
cloudlet-restricted sets the algorithms actually consume.  Sets are computed
*lazily* -- the BFS from a node runs on first access and is memoized -- so
a batch of requests touching a handful of primaries never pays for the
whole graph, while repeated requests on one topology share every set ever
computed (the index itself is cached per radius by
:meth:`MECNetwork.neighborhoods` and can be hoisted explicitly through
:meth:`AugmentationProblem.build`'s ``neighborhoods`` argument).  Radius
``None`` is not supported here -- the "unrestricted placement" baseline
simply uses ``radius = |V| - 1``, which reaches the whole (connected)
graph.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

import networkx as nx


def bfs_within(graph: nx.Graph, source: int, radius: int) -> dict[int, int]:
    """Hop distances from ``source`` to every node within ``radius`` hops.

    A plain deque-based truncated BFS; returns ``{node: distance}`` including
    ``source`` itself at distance 0.
    """
    dist = {source: 0}
    if radius == 0:
        return dist
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        if du == radius:
            continue
        for w in graph.neighbors(u):
            if w not in dist:
                dist[w] = du + 1
                queue.append(w)
    return dist


class NeighborhoodIndex:
    """Lazily computed ``l``-hop neighborhoods of the nodes of a graph.

    The truncated BFS from a node runs on first access to that node's set
    and is memoized; the cloudlet-restricted lists are likewise derived on
    demand.  Accessors therefore cost one BFS the first time and a dict
    lookup afterwards, and an index shared across a batch of requests
    accumulates exactly the sets the batch touches.

    Parameters
    ----------
    graph:
        The AP graph.
    radius:
        The locality radius ``l >= 0``.
    cloudlets:
        Optional iterable of cloudlet node ids; when given, the index can
        also serve the cloudlet-restricted neighbor lists used for
        secondary placement.
    """

    def __init__(
        self,
        graph: nx.Graph,
        radius: int,
        cloudlets: Iterable[int] | None = None,
    ):
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        self._graph = graph
        self._radius = radius
        self._nodes = set(graph.nodes)
        self._cloudlet_set = set(cloudlets) if cloudlets is not None else None
        self._closed: dict[int, frozenset[int]] = {}
        self._closed_cloudlets: dict[int, tuple[int, ...]] = {}

    @property
    def radius(self) -> int:
        """The radius ``l`` this index was built for."""
        return self._radius

    def closed(self, v: int) -> frozenset[int]:
        """``N_l^+(v)`` -- nodes within ``l`` hops of ``v``, including ``v``."""
        closed = self._closed.get(v)
        if closed is None:
            if v not in self._nodes:
                raise KeyError(f"unknown node {v!r}")
            closed = self._closed[v] = frozenset(
                bfs_within(self._graph, v, self._radius)
            )
        return closed

    def open(self, v: int) -> frozenset[int]:
        """``N_l(v)`` -- nodes within ``l`` hops of ``v``, excluding ``v``."""
        return self.closed(v) - {v}

    def closed_cloudlets(self, v: int) -> tuple[int, ...]:
        """Cloudlets in ``N_l^+(v)`` -- the candidate bins for secondaries of a
        primary placed at ``v``.  Requires the index to have been built with
        a ``cloudlets`` argument."""
        bins = self._closed_cloudlets.get(v)
        if bins is None:
            if self._cloudlet_set is None:
                raise KeyError(
                    f"no cloudlet-restricted neighborhood for node {v!r}; "
                    "was the index built with cloudlets?"
                )
            cloudlet_set = self._cloudlet_set
            bins = self._closed_cloudlets[v] = tuple(
                sorted(u for u in self.closed(v) if u in cloudlet_set)
            )
        return bins

    def contains(self, v: int, u: int) -> bool:
        """Whether ``u ∈ N_l^+(v)``."""
        return u in self.closed(v)

    def degree(self, v: int) -> int:
        """``d_v = |N_l(v)|`` -- the neighborhood size used in the paper's
        complexity bounds (``d_min``/``d_max``)."""
        return len(self.closed(v)) - 1

    def degree_bounds(self) -> tuple[int, int]:
        """``(d_min, d_max)`` over all nodes (materialises every set)."""
        degrees = [len(self.closed(v)) - 1 for v in self._nodes]
        return (min(degrees), max(degrees))


def neighborhood_sequence(
    graph: nx.Graph, v: int, radii: Sequence[int]
) -> list[frozenset[int]]:
    """``N_l^+(v)`` for several radii at once (testing/analysis helper)."""
    return [frozenset(bfs_within(graph, v, r)) for r in radii]
