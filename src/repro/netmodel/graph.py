"""The MEC network graph ``G = (V, E)`` with cloudlet co-location.

Section 3 of the paper models the mobile edge-cloud network as an undirected
graph whose nodes are access points (APs).  A subset of APs is co-located
with cloudlets; a cloudlet at node ``v`` has computing capacity ``C_v > 0``
while plain APs have ``C_v = 0``.  The augmentation algorithms only ever
place VNF instances on cloudlets, but hop distances -- and therefore the
``l``-hop placement-locality constraint -- are measured over the full AP
graph.

:class:`MECNetwork` wraps a :class:`networkx.Graph` with the capacity map and
exposes the queries the rest of the library needs (cloudlet enumeration,
degree/diameter statistics, neighborhood index construction).
"""

from __future__ import annotations

from typing import Iterable, Mapping

import networkx as nx

from repro.netmodel.neighborhoods import NeighborhoodIndex
from repro.util.errors import ValidationError


class MECNetwork:
    """An MEC network: AP graph plus cloudlet capacities.

    Parameters
    ----------
    graph:
        Undirected, connected AP graph.  Node ids must be hashable; the
        generators in :mod:`repro.topology` use contiguous integers.
    capacities:
        Mapping from node id to cloudlet computing capacity ``C_v`` (MHz).
        Nodes absent from the mapping (or mapped to 0) are plain APs.

    Notes
    -----
    The network object is immutable after construction; *residual* capacity
    during a run is tracked separately by
    :class:`repro.netmodel.capacity.CapacityLedger` so that several
    algorithms can be evaluated against the same initial state.
    """

    def __init__(self, graph: nx.Graph, capacities: Mapping[int, float]):
        if graph.number_of_nodes() == 0:
            raise ValidationError("MEC network must have at least one node")
        if graph.is_directed():
            raise ValidationError("MEC network graph must be undirected")
        if not nx.is_connected(graph):
            raise ValidationError("MEC network graph must be connected")
        unknown = set(capacities) - set(graph.nodes)
        if unknown:
            raise ValidationError(f"capacity given for unknown nodes: {sorted(unknown)!r}")
        for v, c in capacities.items():
            if c < 0:
                raise ValidationError(f"capacity of node {v!r} must be >= 0, got {c}")

        self._graph = graph.copy()
        nx.freeze(self._graph)
        self._capacity: dict[int, float] = {
            v: float(capacities.get(v, 0.0)) for v in self._graph.nodes
        }
        self._cloudlets: tuple[int, ...] = tuple(
            sorted(v for v, c in self._capacity.items() if c > 0)
        )
        if not self._cloudlets:
            raise ValidationError("MEC network must contain at least one cloudlet")
        self._neighborhood_cache: dict[int, NeighborhoodIndex] = {}

    # -- basic queries -------------------------------------------------------
    @property
    def graph(self) -> nx.Graph:
        """The (frozen) underlying AP graph."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        """``|V|`` -- number of APs."""
        return self._graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        """``|E|``."""
        return self._graph.number_of_edges()

    @property
    def nodes(self) -> list[int]:
        """All AP node ids."""
        return list(self._graph.nodes)

    @property
    def cloudlets(self) -> tuple[int, ...]:
        """Node ids co-located with a cloudlet (``C_v > 0``), sorted."""
        return self._cloudlets

    @property
    def num_cloudlets(self) -> int:
        """Number of cloudlets in the network."""
        return len(self._cloudlets)

    def capacity(self, v: int) -> float:
        """Computing capacity ``C_v`` of node ``v`` (0 for plain APs)."""
        try:
            return self._capacity[v]
        except KeyError:
            raise KeyError(f"unknown node {v!r}") from None

    @property
    def capacities(self) -> dict[int, float]:
        """Copy of the full node -> capacity map."""
        return dict(self._capacity)

    @property
    def total_capacity(self) -> float:
        """Sum of all cloudlet capacities."""
        return sum(self._capacity[v] for v in self._cloudlets)

    def is_cloudlet(self, v: int) -> bool:
        """Whether node ``v`` hosts a cloudlet."""
        return self._capacity.get(v, 0.0) > 0

    # -- distances and neighborhoods ------------------------------------------
    def neighborhoods(self, radius: int) -> NeighborhoodIndex:
        """The ``l``-hop neighborhood index ``N_l(.)`` for ``radius = l``.

        Indexes are cached per radius: the experiment harness calls this with
        the same ``l`` for every request on a topology.
        """
        if radius < 0:
            raise ValidationError(f"neighborhood radius must be >= 0, got {radius}")
        index = self._neighborhood_cache.get(radius)
        if index is None:
            index = NeighborhoodIndex(self._graph, radius, cloudlets=self._cloudlets)
            self._neighborhood_cache[radius] = index
        return index

    def hop_distance(self, u: int, v: int) -> int:
        """Hop distance between APs ``u`` and ``v``."""
        return nx.shortest_path_length(self._graph, u, v)

    # -- statistics -----------------------------------------------------------
    def degree_stats(self) -> tuple[float, int, int]:
        """``(mean, min, max)`` node degree -- used by topology tests."""
        degrees = [d for _, d in self._graph.degree()]
        return (sum(degrees) / len(degrees), min(degrees), max(degrees))

    def diameter(self) -> int:
        """Graph diameter in hops."""
        return nx.diameter(self._graph)

    def with_capacities(self, capacities: Mapping[int, float]) -> "MECNetwork":
        """A copy of this network with a different capacity assignment."""
        return MECNetwork(self._graph, capacities)

    def scaled_capacities(self, fraction: float) -> dict[int, float]:
        """Capacity map scaled by ``fraction`` (the residual ratios of Fig. 3).

        The paper evaluates its algorithms on cloudlets whose *residual*
        capacity is a fraction (1/16 ... 1) of the full capacity; this helper
        produces the corresponding residual map without mutating the network.
        """
        if fraction < 0:
            raise ValidationError(f"fraction must be >= 0, got {fraction}")
        return {v: self._capacity[v] * fraction for v in self._cloudlets}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MECNetwork(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"cloudlets={self.num_cloudlets}, total_capacity={self.total_capacity:.0f})"
        )


def induced_cloudlet_subgraph(network: MECNetwork) -> nx.Graph:
    """The subgraph induced by cloudlet nodes (analysis helper, not used by
    the algorithms -- locality is measured over the full AP graph)."""
    return network.graph.subgraph(network.cloudlets).copy()


def validate_node_ids(network: MECNetwork, nodes: Iterable[int]) -> None:
    """Raise :class:`ValidationError` if any id in ``nodes`` is unknown."""
    known = set(network.graph.nodes)
    bad = [v for v in nodes if v not in known]
    if bad:
        raise ValidationError(f"unknown node ids: {bad!r}")
