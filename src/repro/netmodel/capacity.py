"""Residual-capacity accounting with journaling, rollback, and violation
tracking.

All three algorithms of the paper consume cloudlet computing capacity when
they place VNF instances; the heuristic must *never* exceed residual capacity
(Theorem 6.2) while the randomized algorithm is allowed moderate violations
that Theorem 5.2 bounds by a factor of two with high probability -- and that
Figures 1(b)/2(b)/3(b) *measure*.  :class:`CapacityLedger` supports both
regimes:

* strict mode (default): an over-allocation raises :class:`CapacityError`;
* tracking mode (``allow_violation=True`` on :meth:`allocate`): the
  allocation is recorded anyway and usage ratios above 1.0 become visible in
  :meth:`usage_ratio` / :meth:`usage_stats`.

Every allocation is journaled so a caller can roll back to a checkpoint --
used by algorithms that tentatively commit a matching round and retract it
when the budget check fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.util.errors import CapacityError, ValidationError

#: Tolerance for floating-point capacity comparisons.  Demands and capacities
#: are MHz-scale floats; 1e-9 absolute slack is far below one unit.
EPS = 1e-9


@dataclass(frozen=True)
class Allocation:
    """One journaled capacity allocation.

    Attributes
    ----------
    node:
        Cloudlet node id the resource was taken from.
    amount:
        Computing resource consumed (MHz), strictly positive.
    tag:
        Free-form label identifying the consumer (e.g. ``"f3#2"`` for the
        second secondary of chain position 3); used in diagnostics only.
    """

    node: int
    amount: float
    tag: str = ""


class CapacityLedger:
    """Tracks residual computing capacity of every cloudlet.

    Parameters
    ----------
    capacities:
        Initial residual capacity per cloudlet node, ``{node: MHz}``.
        This is typically either :attr:`MECNetwork.capacities` restricted to
        cloudlets or :meth:`MECNetwork.scaled_capacities` output.
    """

    def __init__(self, capacities: Mapping[int, float]):
        for v, c in capacities.items():
            if c < 0:
                raise ValidationError(f"initial capacity of node {v!r} must be >= 0, got {c}")
        self._initial: dict[int, float] = {v: float(c) for v, c in capacities.items()}
        self._used: dict[int, float] = {v: 0.0 for v in capacities}
        self._journal: list[Allocation] = []
        # O(1) running aggregates.  ``_agg_used`` is maintained as *exactly*
        # the left-to-right fold of the journal's amounts: appends extend the
        # fold in place, and every journal-compacting operation refolds it
        # (those operations already walk the whole journal).  That keeps
        # ``total_used()`` byte-identical to re-summing the journal without
        # the O(journal) walk on the hot query path.
        total_initial = 0.0
        for c in self._initial.values():
            total_initial += c
        self._total_initial: float = total_initial
        self._agg_used: float = 0.0

    # -- queries --------------------------------------------------------------
    @property
    def nodes(self) -> list[int]:
        """All tracked cloudlet node ids."""
        return list(self._initial)

    def initial(self, v: int) -> float:
        """Initial residual capacity of node ``v``."""
        return self._initial[v]

    def used(self, v: int) -> float:
        """Capacity consumed at node ``v`` so far."""
        return self._used[v]

    def residual(self, v: int) -> float:
        """Remaining capacity ``C'_v`` at node ``v`` (may be negative in
        tracking mode after a violation)."""
        return self._initial[v] - self._used[v]

    def residuals(self) -> dict[int, float]:
        """Copy of the node -> residual map."""
        return {v: self.residual(v) for v in self._initial}

    def fits(self, v: int, amount: float) -> bool:
        """Whether ``amount`` can be allocated at ``v`` without violation."""
        return self.residual(v) + EPS >= amount

    def max_units(self, v: int, unit: float) -> int:
        """``floor(C'_v / unit)`` -- how many instances of demand ``unit`` fit.

        This is the ``k_{i,l}`` quantity of Section 4.2.  A tiny epsilon is
        added before flooring so that e.g. residual 1000.0 and unit 250.0
        robustly yield 4 despite float noise.
        """
        if unit <= 0:
            raise ValidationError(f"unit demand must be > 0, got {unit}")
        residual = self.residual(v)
        if residual <= 0:
            return 0
        return int((residual + EPS) / unit)

    # -- mutation -------------------------------------------------------------
    def allocate(
        self, v: int, amount: float, tag: str = "", allow_violation: bool = False
    ) -> Allocation:
        """Consume ``amount`` capacity at node ``v`` and journal it.

        Raises
        ------
        CapacityError
            If the allocation does not fit and ``allow_violation`` is False.
        """
        if v not in self._initial:
            raise KeyError(f"unknown cloudlet {v!r}")
        if amount <= 0:
            raise ValidationError(f"allocation amount must be > 0, got {amount}")
        if not allow_violation and not self.fits(v, amount):
            raise CapacityError(
                f"allocating {amount:.3f} at node {v} exceeds residual "
                f"{self.residual(v):.3f}"
            )
        self._used[v] += amount
        self._agg_used += amount  # extends the journal fold in place
        alloc = Allocation(v, amount, tag)
        self._journal.append(alloc)
        return alloc

    def _recompute(self, nodes: set[int]) -> None:
        """Rebuild ``used`` for ``nodes`` as the in-order sum of live journal
        entries.

        Keeping ``used[v]`` *exactly* equal to that fold (rather than
        patching it with subtractions, which leaves float residue) makes
        :meth:`rollback` byte-identical: restoring the journal prefix of a
        checkpoint restores bit-for-bit the ``used`` values it had.
        """
        for v in nodes:
            self._used[v] = 0.0
        agg = 0.0
        for alloc in self._journal:
            if alloc.node in nodes:
                self._used[alloc.node] += alloc.amount
            agg += alloc.amount
        self._agg_used = agg

    def release(self, allocation: Allocation) -> None:
        """Return a journaled allocation's capacity (out-of-order release OK)."""
        try:
            self._journal.remove(allocation)
        except ValueError:
            raise ValidationError(f"allocation {allocation!r} is not in the journal") from None
        self._recompute({allocation.node})

    def release_tag(self, tag: str) -> float:
        """Release *every* journaled allocation carrying ``tag``.

        Used by lifecycle events that retire a whole consumer at once: a
        request departing the system, a failed instance whose capacity
        returns to the pool, a cloudlet-outage blockade being lifted.

        Returns the total amount released (0.0 when no allocation matches).

        Out-of-order releases compact the journal, so checkpoints taken
        *before* a ``release_tag`` (or :meth:`release`) call no longer
        denote the same journal position -- do not roll back across a
        release.  Transactional callers take their checkpoint, allocate,
        and either commit or roll back without interleaved releases.
        """
        released = 0.0
        touched: set[int] = set()
        kept: list[Allocation] = []
        for alloc in self._journal:
            if alloc.tag == tag:
                released += alloc.amount
                touched.add(alloc.node)
            else:
                kept.append(alloc)
        self._journal = kept
        self._recompute(touched)
        return released

    def release_many(self, allocations: Iterable[Allocation]) -> float:
        """Release several journaled allocations in one journal pass.

        Multiset semantics: each allocation in ``allocations`` consumes one
        matching journal entry (journal order); a missing entry raises
        :class:`ValidationError` with nothing released.  Equivalent to
        calling :meth:`release` per allocation but O(journal) total instead
        of O(journal) *per allocation* -- the difference between a request
        departure being constant-ish and quadratic in a long-running
        service.  Like every out-of-order release, this compacts the
        journal: do not roll back across it.

        Returns the total amount released.
        """
        need: dict[Allocation, int] = {}
        requested = 0
        for alloc in allocations:
            need[alloc] = need.get(alloc, 0) + 1
            requested += 1
        if not requested:
            return 0.0
        # Verify first so a missing entry releases nothing.
        remaining = dict(need)
        for alloc in self._journal:
            count = remaining.get(alloc, 0)
            if count:
                remaining[alloc] = count - 1
        for alloc, count in remaining.items():
            if count:
                raise ValidationError(f"allocation {alloc!r} is not in the journal")
        released = 0.0
        touched: set[int] = set()
        kept: list[Allocation] = []
        for alloc in self._journal:
            count = need.get(alloc, 0)
            if count:
                need[alloc] = count - 1
                released += alloc.amount
                touched.add(alloc.node)
            else:
                kept.append(alloc)
        self._journal = kept
        self._recompute(touched)
        return released

    def tagged(self, tag: str) -> list[Allocation]:
        """All journaled allocations carrying ``tag``, in allocation order."""
        return [a for a in self._journal if a.tag == tag]

    def checkpoint(self) -> int:
        """Opaque marker for the current journal position."""
        return len(self._journal)

    def rollback(self, checkpoint: int) -> None:
        """Undo every allocation made after ``checkpoint``.

        Restores the ledger *byte-identically* to its state at
        :meth:`checkpoint` time (journal prefix and ``used`` values alike),
        provided no out-of-order release compacted the journal in between.
        """
        if checkpoint < 0 or checkpoint > len(self._journal):
            raise ValidationError(f"invalid checkpoint {checkpoint}")
        if checkpoint == len(self._journal):
            return
        touched = {alloc.node for alloc in self._journal[checkpoint:]}
        del self._journal[checkpoint:]
        self._recompute(touched)

    # -- reporting ------------------------------------------------------------
    @property
    def journal(self) -> list[Allocation]:
        """Copy of the allocation journal, in allocation order."""
        return list(self._journal)

    def total_initial(self) -> float:
        """Sum of every node's initial capacity -- O(1), computed once."""
        return self._total_initial

    def total_used(self) -> float:
        """Total capacity consumed across all nodes -- O(1).

        Maintained as exactly the left-to-right fold of the journal's
        amounts, so ``total_used()`` equals
        ``sum(a.amount for a in ledger.journal)`` *byte-for-byte* at all
        times (the aggregate regression test pins this).  Note this fold
        order differs from ``sum(ledger.used(v) for v in ledger.nodes)``,
        which groups by node first -- equal up to float associativity.
        """
        return self._agg_used

    def total_residual(self) -> float:
        """``total_initial() - total_used()`` -- O(1) aggregate residual."""
        return self._total_initial - self._agg_used

    # -- auditing -------------------------------------------------------------
    def derived_used(self) -> dict[int, float]:
        """Re-derive per-node occupancy as the in-order fold of the journal.

        This is the auditor's entry point: it recomputes what ``used(v)``
        *should* be from the journal alone, without touching the cached
        sums.  Because :meth:`_recompute` keeps the cache equal to exactly
        this fold, a healthy ledger satisfies ``derived_used()[v] ==
        used(v)`` **byte-exactly** (``==`` on floats, no tolerance) for
        every node -- any drift means the cache and the journal disagree,
        i.e. a bookkeeping bug.
        """
        derived = {v: 0.0 for v in self._initial}
        for alloc in self._journal:
            derived[alloc.node] += alloc.amount
        return derived

    def audit_cache(self) -> dict[int, tuple[float, float]]:
        """Nodes where the cached ``used`` diverges from :meth:`derived_used`.

        Returns ``{node: (cached, derived)}``; empty on a healthy ledger.
        The comparison is exact (bit-level), not tolerance-based.
        """
        derived = self.derived_used()
        return {
            v: (self._used[v], derived[v])
            for v in self._initial
            if self._used[v] != derived[v]
        }

    def journal_tags(self) -> dict[str, list[Allocation]]:
        """The journal grouped by tag, in allocation order within each tag.

        Used by invariant auditors to reconcile the ledger against an
        independent record of who should be holding capacity (live chain
        instances, outage blockades, ...).
        """
        by_tag: dict[str, list[Allocation]] = {}
        for alloc in self._journal:
            by_tag.setdefault(alloc.tag, []).append(alloc)
        return by_tag

    def usage_ratio(self, v: int) -> float:
        """``used / initial`` at node ``v``; > 1.0 indicates a violation.

        Nodes that started with zero residual capacity report 0.0 when
        untouched and ``inf`` if anything was (violatingly) placed there.
        """
        initial = self._initial[v]
        used = self._used[v]
        if initial <= 0:
            return float("inf") if used > EPS else 0.0
        return used / initial

    def usage_stats(self, nodes: Iterable[int] | None = None) -> tuple[float, float, float]:
        """``(mean, min, max)`` usage ratio over ``nodes``.

        This is exactly what Figures 1(b)/2(b)/3(b) plot for the randomized
        algorithm.  ``nodes`` defaults to every tracked cloudlet with
        positive initial capacity.
        """
        pool = [v for v in (nodes if nodes is not None else self._initial) if self._initial[v] > 0]
        if not pool:
            return (0.0, 0.0, 0.0)
        ratios = [self.usage_ratio(v) for v in pool]
        return (sum(ratios) / len(ratios), min(ratios), max(ratios))

    def violations(self) -> dict[int, float]:
        """Nodes whose usage exceeds initial capacity, with the excess amount."""
        out: dict[int, float] = {}
        for v in self._initial:
            excess = self._used[v] - self._initial[v]
            if excess > EPS:
                out[v] = excess
        return out

    def copy(self) -> "CapacityLedger":
        """Deep copy (journal included) -- lets algorithms run on clones of a
        shared initial state."""
        clone = CapacityLedger(self._initial)
        clone._used = dict(self._used)
        clone._journal = list(self._journal)
        clone._agg_used = self._agg_used
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        total_init = sum(self._initial.values())
        total_used = sum(self._used.values())
        return f"CapacityLedger(nodes={len(self._initial)}, used={total_used:.0f}/{total_init:.0f})"
