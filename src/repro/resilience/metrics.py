"""Resilience metrics: what the operator actually answers for.

The paper's figures measure provisioning quality at commit time; a
fault-tolerant system is judged by what happens *afterwards*.  The tracker
integrates per-chain SLO state over simulated time (state changes only at
events, so exact integration is cheap) and aggregates the operator-facing
quantities:

* **per-request availability** -- fraction of a chain's committed lifetime
  its live reliability stayed at/above ``rho_j``;
* **time below SLO** -- total breach time, summed over chains;
* **repair success rate and MTTR** -- how often repairs restore the SLO,
  and the mean breach-to-restoration delay;
* **fallback-tier histogram** -- which solver tier served each request
  (tier drift is the early-warning signal that the exact tier is
  struggling);
* **ledger-invariant violations** -- count of events after which
  ``used(v) > initial(v)`` held anywhere (must be 0; continuously asserted
  by the stream).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.resilience.repair import RepairOutcome
from repro.util.errors import ValidationError
from repro.util.stats import percentiles


@dataclass(frozen=True)
class RequestOutcome:
    """One request's fate at commit time in the resilient stream."""

    name: str
    arrived_at: float
    admitted: bool
    reliability: float
    expectation: float
    expectation_met: bool
    backups: int
    fallback_tier: int | None
    fallback_algorithm: str | None


@dataclass
class ChainTimeline:
    """SLO state integration for one committed chain."""

    name: str
    committed_at: float
    met_at_commit: bool
    slo_ok: bool
    breach_since: float | None = None
    time_below: float = 0.0
    breaches: int = 0
    restorations: int = 0
    unrepairable: bool = False


@dataclass
class ResilienceReport:
    """Aggregated outcome of one resilient stream run."""

    horizon: float
    outcomes: list[RequestOutcome] = field(default_factory=list)
    timelines: dict[str, ChainTimeline] = field(default_factory=dict)
    repairs: list[RepairOutcome] = field(default_factory=list)
    tier_histogram: dict[str, int] = field(default_factory=dict)
    event_counts: dict[str, int] = field(default_factory=dict)
    mttr_samples: list[float] = field(default_factory=list)
    invariant_violations: int = 0
    final_utilisation: float = 0.0
    # Streaming-service metrics (zero / empty for plain resilient runs).
    # Counters mirror the outcome list so reports stay cheap at
    # million-request scale, where per-request outcome objects are elided
    # (``MetricsTracker(record_outcomes=False)``).
    requests_seen: int = 0
    requests_admitted: int = 0
    requests_met: int = 0
    shed_requests: int = 0
    admission_latencies: list[float] = field(default_factory=list)
    queue_depths: list[int] = field(default_factory=list)

    # -- request-level aggregates ---------------------------------------------
    @property
    def num_requests(self) -> int:
        if self.requests_seen:
            return self.requests_seen
        return len(self.outcomes)

    @property
    def acceptance_rate(self) -> float:
        if self.requests_seen:
            return self.requests_admitted / self.requests_seen
        if not self.outcomes:
            return 0.0
        return sum(o.admitted for o in self.outcomes) / len(self.outcomes)

    @property
    def expectation_met_rate(self) -> float:
        if self.requests_seen:
            if not self.requests_admitted:
                return 0.0
            return self.requests_met / self.requests_admitted
        admitted = [o for o in self.outcomes if o.admitted]
        if not admitted:
            return 0.0
        return sum(o.expectation_met for o in admitted) / len(admitted)

    # -- resilience aggregates --------------------------------------------------
    @property
    def chains_degraded(self) -> int:
        """Chains that were committed at/above SLO and later breached it."""
        return sum(
            1 for t in self.timelines.values() if t.met_at_commit and t.breaches > 0
        )

    @property
    def chains_unrepairable(self) -> int:
        """Chains whose repair attempts were exhausted without restoration."""
        return sum(1 for t in self.timelines.values() if t.unrepairable)

    @property
    def time_below_slo(self) -> float:
        """Total breach time summed over all committed chains."""
        return sum(t.time_below for t in self.timelines.values())

    def availability(self, name: str) -> float:
        """Fraction of a chain's committed lifetime spent at/above SLO."""
        timeline = self.timelines[name]
        lifetime = self.horizon - timeline.committed_at
        if lifetime <= 0:
            return 1.0
        return 1.0 - timeline.time_below / lifetime

    @property
    def mean_availability(self) -> float:
        """Mean per-chain availability over committed chains."""
        if not self.timelines:
            return 0.0
        return sum(self.availability(name) for name in self.timelines) / len(
            self.timelines
        )

    @property
    def repair_attempts(self) -> int:
        """Repair attempts excluding 'already healthy' no-ops."""
        return sum(1 for r in self.repairs if r.attempt > 0)

    @property
    def repair_successes(self) -> int:
        return sum(1 for r in self.repairs if r.attempt > 0 and r.restored)

    @property
    def repair_success_rate(self) -> float:
        attempts = self.repair_attempts
        if attempts == 0:
            return 0.0
        return self.repair_successes / attempts

    @property
    def mttr(self) -> float:
        """Mean breach-to-restoration delay over restored breaches."""
        if not self.mttr_samples:
            return 0.0
        return sum(self.mttr_samples) / len(self.mttr_samples)

    def mttr_percentiles(
        self, quantiles: tuple[float, ...] = (0.5, 0.9, 0.99)
    ) -> dict[str, float]:
        """Breach-to-restoration delay percentiles, e.g. ``{"p50": ...}``.

        Linear interpolation between order statistics (the same convention
        as ``numpy.percentile``'s default) via the shared
        :func:`repro.util.stats.percentiles` helper, so every latency-style
        report in the repo interpolates identically.  Empty samples map
        every quantile to 0.0.
        """
        for q in quantiles:
            if not (0.0 <= q <= 1.0):
                raise ValidationError(f"quantile must be in [0, 1], got {q}")
        return percentiles(self.mttr_samples, points=[q * 100 for q in quantiles])

    def latency_percentiles(
        self, points: tuple[float, ...] = (50.0, 90.0, 99.0)
    ) -> dict[str, float]:
        """Admission-latency percentiles (seconds), e.g. ``{"p50": ...}``."""
        return percentiles(self.admission_latencies, points=points)

    def queue_depth_stats(self) -> dict[str, float]:
        """Admission-queue depth summary: mean, max, and p50/p90/p99."""
        depths = self.queue_depths
        stats = percentiles(depths)
        stats["mean"] = sum(depths) / len(depths) if depths else 0.0
        stats["max"] = float(max(depths)) if depths else 0.0
        return stats

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests shed by backpressure before intake."""
        offered = self.num_requests + self.shed_requests
        if not offered:
            return 0.0
        return self.shed_requests / offered

    def summary_rows(self) -> list[list[object]]:
        """``[metric, value]`` rows for the CLI / benchmark tables."""
        rows: list[list[object]] = [
            ["requests", self.num_requests],
            ["acceptance rate", round(self.acceptance_rate, 4)],
            ["expectation met at commit", round(self.expectation_met_rate, 4)],
            ["mean availability", round(self.mean_availability, 5)],
            ["time below SLO", round(self.time_below_slo, 3)],
            ["chains degraded", self.chains_degraded],
            ["chains unrepairable", self.chains_unrepairable],
            ["repair attempts", self.repair_attempts],
            ["repair success rate", round(self.repair_success_rate, 4)],
            ["MTTR", round(self.mttr, 4)],
            ["instance failures", self.event_counts.get("instance-fail", 0)],
            ["cloudlet outages", self.event_counts.get("cloudlet-fail", 0)],
            ["ledger invariant violations", self.invariant_violations],
            ["final utilisation", round(self.final_utilisation, 4)],
        ]
        for tier, count in sorted(self.tier_histogram.items()):
            rows.append([f"served by {tier}", count])
        if self.shed_requests or self.admission_latencies or self.queue_depths:
            rows.append(["shed requests", self.shed_requests])
            rows.append(["shed rate", round(self.shed_rate, 4)])
            for label, value in self.latency_percentiles().items():
                rows.append([f"admission latency {label}", round(value, 6)])
            depth = self.queue_depth_stats()
            rows.append(["queue depth p99", round(depth["p99"], 1)])
            rows.append(["queue depth max", depth["max"]])
        return rows


class MetricsTracker:
    """Event-time accumulator building a :class:`ResilienceReport`."""

    def __init__(self, record_outcomes: bool = True) -> None:
        self._report = ResilienceReport(horizon=0.0)
        # At million-request scale the per-request RequestOutcome objects
        # dominate memory; the streaming service disables them and relies
        # on the counters (kept in lockstep either way).
        self._record_outcomes = record_outcomes

    # -- recording --------------------------------------------------------------
    def on_outcome(self, outcome: RequestOutcome) -> None:
        """Record one arrival's commit-time outcome."""
        self._report.requests_seen += 1
        if outcome.admitted:
            self._report.requests_admitted += 1
            if outcome.expectation_met:
                self._report.requests_met += 1
        if self._record_outcomes:
            self._report.outcomes.append(outcome)
        if outcome.fallback_algorithm is not None:
            if outcome.fallback_tier is not None:
                key = f"tier {outcome.fallback_tier} ({outcome.fallback_algorithm})"
            else:
                key = outcome.fallback_algorithm
            self._report.tier_histogram[key] = (
                self._report.tier_histogram.get(key, 0) + 1
            )

    def on_commit(self, name: str, now: float, slo_ok: bool) -> None:
        """Start a committed chain's SLO timeline."""
        if name in self._report.timelines:
            raise ValidationError(f"chain {name!r} already tracked")
        timeline = ChainTimeline(
            name=name, committed_at=now, met_at_commit=slo_ok, slo_ok=slo_ok
        )
        if not slo_ok:
            timeline.breach_since = now
        self._report.timelines[name] = timeline

    def on_state(self, name: str, now: float, slo_ok: bool) -> None:
        """Record a chain's SLO state after an event; integrates breaches."""
        timeline = self._report.timelines[name]
        if timeline.slo_ok and not slo_ok:
            timeline.slo_ok = False
            timeline.breach_since = now
            timeline.breaches += 1
        elif not timeline.slo_ok and slo_ok:
            timeline.slo_ok = True
            if timeline.breach_since is not None:
                delay = now - timeline.breach_since
                timeline.time_below += delay
                self._report.mttr_samples.append(delay)
            timeline.breach_since = None
            timeline.restorations += 1
            timeline.unrepairable = False

    def on_repair(self, outcome: RepairOutcome) -> None:
        """Record one repair attempt; flags exhausted chains unrepairable."""
        self._report.repairs.append(outcome)
        if outcome.attempt > 0 and not outcome.restored and not outcome.retriable:
            timeline = self._report.timelines.get(outcome.chain)
            if timeline is not None:
                timeline.unrepairable = True

    def on_invariant_violation(self) -> None:
        self._report.invariant_violations += 1

    # -- streaming-service recording --------------------------------------------
    def on_shed(self, count: int = 1) -> None:
        """Record arrivals shed by admission-queue backpressure."""
        self._report.shed_requests += count

    def on_queue_depth(self, depth: int) -> None:
        """Sample the admission-queue depth (taken once per batch window)."""
        self._report.queue_depths.append(depth)

    def on_admission_latency(self, seconds: float) -> None:
        """Record one request's enqueue-to-decision wall latency."""
        self._report.admission_latencies.append(seconds)

    @property
    def report(self) -> ResilienceReport:
        """The report under construction (finalized in place by
        :meth:`finalize`).  Extensions -- the chaos campaign tracker --
        read commit-time outcomes and timelines from here mid-run."""
        return self._report

    def timeline(self, name: str) -> ChainTimeline | None:
        """The tracked SLO timeline of one chain (None if never committed).

        Exposed for the chaos invariant auditor, which cross-checks every
        timeline's recorded ``slo_ok`` against an independently re-derived
        reliability after each audited event.
        """
        return self._report.timelines.get(name)

    # -- finalisation -----------------------------------------------------------
    def finalize(
        self,
        horizon: float,
        event_counts: dict[str, int] | None = None,
        final_utilisation: float = 0.0,
    ) -> ResilienceReport:
        """Close open breaches at the horizon and return the report."""
        self._report.horizon = horizon
        for timeline in self._report.timelines.values():
            if not timeline.slo_ok and timeline.breach_since is not None:
                timeline.time_below += horizon - timeline.breach_since
                timeline.breach_since = horizon
        self._report.event_counts = dict(event_counts or {})
        self._report.final_utilisation = final_utilisation
        return self._report
