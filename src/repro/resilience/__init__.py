"""Fault tolerance for the request stream: failures, repair, degradation.

The paper provisions backups once, offline; this subpackage keeps chains
serving *after* commit:

* :mod:`~repro.resilience.state` -- live per-instance state of committed
  chains and their live (surviving-redundancy) reliability;
* :mod:`~repro.resilience.injector` -- instance deaths and correlated
  cloudlet outages as discrete events against the shared capacity ledger;
* :mod:`~repro.resilience.repair` -- transactional re-augmentation of
  chains degraded below ``rho_j``, with bounded retries and exponential
  backoff;
* :mod:`~repro.resilience.metrics` -- availability, time-below-SLO,
  repair success rate, MTTR, fallback-tier histogram;
* :mod:`~repro.resilience.stream` -- :func:`run_resilient_stream`, the
  entry point composing all of the above with the solver fallback chain
  of :mod:`repro.algorithms.fallback`.
"""

from repro.resilience.injector import FailureConfig, FailureInjector
from repro.resilience.metrics import (
    ChainTimeline,
    MetricsTracker,
    RequestOutcome,
    ResilienceReport,
)
from repro.resilience.repair import RepairController, RepairOutcome, RepairPolicy
from repro.resilience.state import CommittedChain, LiveInstance
from repro.resilience.stream import (
    ResilienceConfig,
    ResilientStreamController,
    run_resilient_stream,
)

__all__ = [
    "ChainTimeline",
    "CommittedChain",
    "FailureConfig",
    "FailureInjector",
    "LiveInstance",
    "MetricsTracker",
    "RepairController",
    "RepairOutcome",
    "RepairPolicy",
    "RequestOutcome",
    "ResilienceConfig",
    "ResilienceReport",
    "ResilientStreamController",
    "run_resilient_stream",
]
