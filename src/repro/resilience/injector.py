"""Failure injection: instance deaths and cloudlet outages on the event queue.

The injector turns the static failure *model* (instance reliabilities,
:mod:`repro.simulation.lifecycle` rates) into runtime *events* against the
live system:

* **instance failures** -- every placed instance draws an exponential
  time-to-failure from its :func:`rates_for_reliability` MTTF (optionally
  accelerated for stress tests).  A failed instance is destroyed: it stops
  counting toward live reliability and its capacity allocation is released
  back to the ledger (the slot can host a replacement).  Restoring
  redundancy is the repair controller's job, not an automatic respawn --
  that is what distinguishes a *system* from a simulation.
* **cloudlet outages** -- each cloudlet independently alternates UP/DOWN
  through a :class:`~repro.simulation.lifecycle.CloudletProcess`.  An
  outage kills every live instance hosted on the cloudlet (correlated
  failure) and takes the cloudlet's capacity out of service by allocating
  a *blockade* for its full remaining residual under tag ``outage:<v>``:
  with zero residual nothing -- admission, augmentation, or repair -- can
  place there, without any special-casing in the placement code paths.
  Recovery releases the blockade, returning empty capacity; instances
  lost in the outage stay lost.

Every mutation flows through the shared :class:`CapacityLedger`, so the
invariant ``used(v) <= initial(v)`` is checkable after every event -- the
resilient stream asserts it continuously.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.netmodel.capacity import CapacityLedger
from repro.netmodel.graph import MECNetwork
from repro.simulation.engine import EventQueue
from repro.simulation.lifecycle import CloudletProcess, rates_for_reliability
from repro.resilience.state import CommittedChain, LiveInstance
from repro.util.errors import ValidationError

#: Event kinds the injector schedules and handles.
INSTANCE_FAIL = "instance-fail"
CLOUDLET_FAIL = "cloudlet-fail"
CLOUDLET_RECOVER = "cloudlet-recover"


@dataclass(frozen=True)
class FailureConfig:
    """Failure-process parameters of one resilient run.

    Attributes
    ----------
    instance_mttr:
        MTTR scale fed to :func:`rates_for_reliability` -- sets the time
        unit of instance MTTFs (an instance of reliability ``r`` has
        ``MTTF = mttr * r / (1 - r)``).
    instance_acceleration:
        Divides every instance MTTF: > 1 compresses rare failures into a
        short horizon (accelerated-aging stress testing); 0 disables
        instance failures entirely (cloudlet-outage-only studies).
    cloudlet_mtbf:
        Mean up-time between cloudlet outages; ``math.inf`` disables
        outages.
    cloudlet_mttr:
        Mean outage duration.
    """

    instance_mttr: float = 1.0
    instance_acceleration: float = 1.0
    cloudlet_mtbf: float = math.inf
    cloudlet_mttr: float = 1.0

    def __post_init__(self) -> None:
        if self.instance_mttr <= 0:
            raise ValidationError(f"instance_mttr must be positive, got {self.instance_mttr}")
        if self.instance_acceleration < 0:
            raise ValidationError(
                f"instance_acceleration must be >= 0, got {self.instance_acceleration}"
            )
        if self.cloudlet_mtbf <= 0:
            raise ValidationError(f"cloudlet_mtbf must be positive, got {self.cloudlet_mtbf}")
        if self.cloudlet_mttr <= 0 or math.isinf(self.cloudlet_mttr):
            raise ValidationError(
                f"cloudlet_mttr must be positive and finite, got {self.cloudlet_mttr}"
            )


class FailureInjector:
    """Schedules and applies failure/recovery events for the live system.

    The injector does not run its own loop: the stream pops events from the
    shared queue and hands the injector's kinds to :meth:`handle`, which
    applies the mutation and returns the chains whose live set changed (for
    SLO re-evaluation by the caller).
    """

    def __init__(
        self,
        network: MECNetwork,
        ledger: CapacityLedger,
        queue: EventQueue,
        config: FailureConfig,
        rng: np.random.Generator,
    ):
        self.network = network
        self.ledger = ledger
        self.queue = queue
        self.config = config
        self.rng = rng
        self._chains: dict[str, CommittedChain] = {}
        self._processes: dict[int, CloudletProcess] = {}
        #: Counts of applied events by kind, for reporting.
        self.counts: dict[str, int] = {
            INSTANCE_FAIL: 0,
            CLOUDLET_FAIL: 0,
            CLOUDLET_RECOVER: 0,
        }

    # -- queries ----------------------------------------------------------------
    @property
    def down_cloudlets(self) -> list[int]:
        """Currently-down cloudlets, sorted for deterministic iteration."""
        return sorted(v for v, p in self._processes.items() if not p.up)

    def is_down(self, v: int) -> bool:
        """Whether cloudlet ``v`` is currently in an outage."""
        process = self._processes.get(v)
        return process is not None and not process.up

    def chain(self, name: str) -> CommittedChain:
        """Registered chain by name; raises KeyError if unknown."""
        return self._chains[name]

    def chains(self) -> list[CommittedChain]:
        """All registered chains, in registration order."""
        return list(self._chains.values())

    # -- lifecycle --------------------------------------------------------------
    def start(self) -> None:
        """Create a :class:`CloudletProcess` per cloudlet and schedule the
        first outages.  A no-op when ``cloudlet_mtbf`` is infinite."""
        if math.isinf(self.config.cloudlet_mtbf):
            return
        batch: list[tuple[float, tuple]] = []
        for v in sorted(self.network.cloudlets):
            process = CloudletProcess(
                cloudlet=v,
                mtbf=self.config.cloudlet_mtbf,
                mttr=self.config.cloudlet_mttr,
            )
            self._processes[v] = process
            # draw in sorted-cloudlet order (the stream position each id
            # consumes is fixed), then schedule the whole batch through the
            # stable (time, kind, id) order so same-timestamp ties replay
            # identically across processes and hash seeds
            batch.append(
                (self.queue.now + process.sample_uptime(self.rng), (CLOUDLET_FAIL, v))
            )
        self.queue.schedule_batch(batch)

    def register(self, chain: CommittedChain, now: float) -> None:
        """Track a committed chain and schedule failures for its instances."""
        if chain.name in self._chains:
            raise ValidationError(f"chain {chain.name!r} already registered")
        self._chains[chain.name] = chain
        self.attach_instances(chain, chain.live_instances(), now)

    def attach_instances(
        self, chain: CommittedChain, instances: list[LiveInstance], now: float
    ) -> None:
        """Schedule time-to-failure for newly placed instances.

        Called at commit time and again by the repair controller for every
        replacement instance it places.
        """
        if self.config.instance_acceleration == 0:
            return
        batch: list[tuple[float, tuple]] = []
        for inst in instances:
            if inst.reliability >= 1.0:
                continue  # perfect instances never fail
            mttf, _ = rates_for_reliability(inst.reliability, self.config.instance_mttr)
            mttf /= self.config.instance_acceleration
            t_fail = now + float(self.rng.exponential(mttf))
            batch.append((t_fail, (INSTANCE_FAIL, chain.name, inst.tag)))
        self.queue.schedule_batch(batch)

    # -- event application ------------------------------------------------------
    def handles(self, kind: str) -> bool:
        """Whether an event kind belongs to the injector."""
        return kind in (INSTANCE_FAIL, CLOUDLET_FAIL, CLOUDLET_RECOVER)

    def handle(self, payload: tuple) -> list[CommittedChain]:
        """Apply one injector event; return the chains whose live set changed."""
        kind = payload[0]
        if kind == INSTANCE_FAIL:
            return self._on_instance_fail(payload[1], payload[2])
        if kind == CLOUDLET_FAIL:
            return self._on_cloudlet_fail(payload[1])
        if kind == CLOUDLET_RECOVER:
            return self._on_cloudlet_recover(payload[1])
        raise ValidationError(f"unknown injector event kind {kind!r}")

    def fail_instance(self, chain: CommittedChain, inst: LiveInstance) -> bool:
        """Kill one live instance and release its allocation.

        The primitive behind both scheduled instance-failure events and
        scripted chaos storms.  Returns whether the instance was live (a
        dead instance is a no-op, e.g. one already lost to an outage).
        """
        if not inst.alive:
            return False
        inst.alive = False
        self.ledger.release_tag(inst.tag)
        self.counts[INSTANCE_FAIL] += 1
        return True

    def _on_instance_fail(self, chain_name: str, tag: str) -> list[CommittedChain]:
        chain = self._chains.get(chain_name)
        if chain is None:
            return []
        for inst in chain.instances:
            if inst.tag == tag:
                return [chain] if self.fail_instance(chain, inst) else []
        return []

    def _apply_outage(self, process: CloudletProcess) -> list[CommittedChain]:
        """Take a cloudlet down: kill hosted instances, blockade capacity."""
        v = process.cloudlet
        process.up = False
        self.counts[CLOUDLET_FAIL] += 1
        affected = []
        for chain in self._chains.values():
            killed = chain.kill_on_cloudlet(v)
            for inst in killed:
                self.ledger.release_tag(inst.tag)
            if killed:
                affected.append(chain)
        # blockade: take the cloudlet's full remaining capacity out of
        # service so no placement path can use it during the outage
        residual = self.ledger.residual(v)
        if residual > 0:
            self.ledger.allocate(v, residual, tag=f"outage:{v}")
        return affected

    def _apply_recovery(self, process: CloudletProcess) -> None:
        """Bring a cloudlet back: lift the blockade (lost instances stay lost)."""
        process.up = True
        self.counts[CLOUDLET_RECOVER] += 1
        self.ledger.release_tag(f"outage:{process.cloudlet}")

    def _on_cloudlet_fail(self, v: int) -> list[CommittedChain]:
        process = self._processes[v]
        if not process.up:
            return []
        affected = self._apply_outage(process)
        now = self.queue.now
        self.queue.schedule(
            now + process.sample_downtime(self.rng), (CLOUDLET_RECOVER, v)
        )
        return affected

    def _on_cloudlet_recover(self, v: int) -> list[CommittedChain]:
        process = self._processes[v]
        if process.up:
            return []
        self._apply_recovery(process)
        now = self.queue.now
        self.queue.schedule(now + process.sample_uptime(self.rng), (CLOUDLET_FAIL, v))
        # recovery changes no chain's live set (lost instances stay lost);
        # it only returns capacity that pending repairs can now use
        return []

    # -- scripted control (chaos campaigns) -------------------------------------
    def force_outage(self, v: int) -> list[CommittedChain]:
        """Scripted outage of cloudlet ``v``: apply the blackout *now*
        without scheduling a sampled recovery -- the scripting layer owns
        the timing.  No-op (empty list) if the cloudlet is already down.

        Scripted and sampled outage processes must not share a cloudlet
        (:class:`~repro.chaos.scenario.ChaosScenario` validates that
        ``cloudlet_mtbf`` is infinite when scripted outage events exist),
        otherwise a forced recovery would silently cancel the natural
        process's next cycle.
        """
        if v not in self.network.cloudlets:
            raise ValidationError(f"unknown cloudlet {v!r}")
        process = self._processes.get(v)
        if process is None:
            process = CloudletProcess(cloudlet=v, mtbf=math.inf, mttr=1.0)
            self._processes[v] = process
        if not process.up:
            return []
        return self._apply_outage(process)

    def force_recovery(self, v: int) -> bool:
        """Scripted recovery of cloudlet ``v``; returns whether it was down."""
        process = self._processes.get(v)
        if process is None or process.up:
            return False
        self._apply_recovery(process)
        return True
