"""The fault-tolerant request-stream controller.

``run_resilient_stream`` is the system-level composition of everything the
repo has: requests arrive over simulated time onto shared capacity
(:mod:`repro.experiments.batch` semantics), a
:class:`~repro.resilience.injector.FailureInjector` destroys instances and
takes whole cloudlets down mid-flight, a
:class:`~repro.resilience.repair.RepairController` re-augments degraded
chains against whatever residual capacity is left, and every solve runs
through the configured algorithm -- typically a
:class:`~repro.algorithms.fallback.FallbackAlgorithm` so one slow or
crashing solver tier degrades service instead of halting it.

Three invariants the controller maintains:

* **transactional commits** -- each arrival (primaries + backups) and each
  repair is one ledger transaction bracketed by ``checkpoint()`` /
  ``rollback()``; a mid-commit :class:`CapacityError` leaves the ledger
  exactly as before the request;
* **no propagated solver failures** -- a fully exhausted fallback chain
  downgrades the request to a no-augmentation commit; the stream never
  re-raises from a solve;
* **ledger feasibility** -- ``used(v) <= initial(v)`` is asserted after
  every event; violations are counted in the report (and must be zero).

All randomness flows from one generator, and event ties break FIFO, so a
fixed seed makes the entire run -- arrivals, failures, repairs, metrics --
bit-reproducible.  That determinism is what the CI fault-injection smoke
job pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.admission.admit import random_primary_placement
from repro.algorithms.base import AugmentationAlgorithm
from repro.core.problem import AugmentationProblem
from repro.experiments.settings import ExperimentSettings
from repro.experiments.workload import make_network, make_request
from repro.netmodel.capacity import CapacityLedger
from repro.netmodel.graph import MECNetwork
from repro.netmodel.vnf import Request, VNFCatalog
from repro.resilience.injector import CLOUDLET_RECOVER, FailureConfig, FailureInjector
from repro.resilience.metrics import MetricsTracker, RequestOutcome, ResilienceReport
from repro.resilience.repair import RepairController, RepairPolicy
from repro.resilience.state import CommittedChain, LiveInstance
from repro.simulation.engine import EventQueue
from repro.util.errors import (
    CapacityError,
    FallbackExhaustedError,
    InfeasibleError,
    ValidationError,
)
from repro.util.rng import RandomState, as_rng

#: Event kinds owned by the stream itself.
ARRIVAL = "arrival"
REPAIR_RETRY = "repair-retry"


@dataclass(frozen=True)
class ResilienceConfig:
    """Shape of one resilient run.

    Attributes
    ----------
    horizon:
        Simulated time span (in instance-MTTR units by default).
    arrival_span:
        Fraction of the horizon over which arrivals are evenly spread;
        the remainder is pure fault/repair operation.
    failures:
        Failure-process parameters (see :class:`FailureConfig`).
    policy:
        Repair retry/backoff discipline (see :class:`RepairPolicy`).
    """

    horizon: float = 40.0
    arrival_span: float = 0.4
    failures: FailureConfig = field(default_factory=FailureConfig)
    policy: RepairPolicy = field(default_factory=RepairPolicy)

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValidationError(f"horizon must be positive, got {self.horizon}")
        if not (0.0 < self.arrival_span <= 1.0):
            raise ValidationError(
                f"arrival_span must be in (0, 1], got {self.arrival_span}"
            )


class ResilientStreamController:
    """Event-loop state of one resilient run (used via ``run_resilient_stream``)."""

    def __init__(
        self,
        settings: ExperimentSettings,
        algorithm: AugmentationAlgorithm,
        config: ResilienceConfig,
        network: MECNetwork,
        catalog: VNFCatalog,
        rng,
    ):
        self.settings = settings
        self.algorithm = algorithm
        self.config = config
        self.network = network
        self.catalog = catalog
        self.rng = rng
        self.ledger = CapacityLedger({v: network.capacity(v) for v in network.cloudlets})
        self.queue = EventQueue()
        self.neighborhoods = network.neighborhoods(settings.radius)
        self.injector = FailureInjector(
            network, self.ledger, self.queue, config.failures, rng
        )
        self.repairer = RepairController(
            network,
            self.ledger,
            self.injector,
            algorithm,
            radius=settings.radius,
            policy=config.policy,
            neighborhoods=self.neighborhoods,
            rng=rng,
        )
        self.metrics = MetricsTracker()
        self._pending_repairs: set[str] = set()

    # -- arrival handling -------------------------------------------------------
    def _commit_request(self, request: Request, now: float) -> None:
        checkpoint = self.ledger.checkpoint()
        try:
            primaries = random_primary_placement(
                self.network, request, rng=self.rng, ledger=self.ledger
            )
        except InfeasibleError:
            self.metrics.on_outcome(
                RequestOutcome(
                    name=request.name,
                    arrived_at=now,
                    admitted=False,
                    reliability=0.0,
                    expectation=request.expectation,
                    expectation_met=False,
                    backups=0,
                    fallback_tier=None,
                    fallback_algorithm=None,
                )
            )
            return

        problem = AugmentationProblem.build(
            self.network,
            request,
            primaries,
            radius=self.settings.radius,
            residuals=self.ledger.residuals(),
            neighborhoods=self.neighborhoods,
        )
        try:
            result = self.algorithm.solve(problem, rng=self.rng)
        except FallbackExhaustedError:
            result = None  # degrade to a no-augmentation commit

        instances = [
            LiveInstance(
                position=i,
                cloudlet=v,
                demand=func.demand,
                reliability=func.reliability,
                tag=f"primary:{request.name}#{i}",
            )
            for i, (func, v) in enumerate(zip(request.chain, primaries))
        ]
        placements = result.solution.placements if result is not None else ()
        try:
            for placement in placements:
                tag = f"backup:{request.name}#{placement.position}.{placement.k}"
                self.ledger.allocate(placement.bin, placement.demand, tag=tag)
                func = request.chain[placement.position]
                instances.append(
                    LiveInstance(
                        position=placement.position,
                        cloudlet=placement.bin,
                        demand=placement.demand,
                        reliability=func.reliability,
                        tag=tag,
                    )
                )
        except CapacityError:
            # roll the *whole request* back -- primaries included
            self.ledger.rollback(checkpoint)
            self.metrics.on_outcome(
                RequestOutcome(
                    name=request.name,
                    arrived_at=now,
                    admitted=False,
                    reliability=0.0,
                    expectation=request.expectation,
                    expectation_met=False,
                    backups=0,
                    fallback_tier=None,
                    fallback_algorithm=None,
                )
            )
            return

        chain = CommittedChain(
            request=request,
            instances=instances,
            anchors=tuple(primaries),
            committed_at=now,
            met_at_commit=False,
        )
        reliability = chain.live_reliability()
        slo_ok = request.meets_expectation(reliability)
        chain.met_at_commit = slo_ok
        self.injector.register(chain, now)

        meta = dict(result.meta) if result is not None else {}
        serving = meta.get(
            "fallback_algorithm", result.algorithm if result is not None else "none"
        )
        self.metrics.on_outcome(
            RequestOutcome(
                name=request.name,
                arrived_at=now,
                admitted=True,
                reliability=reliability,
                expectation=request.expectation,
                expectation_met=slo_ok,
                backups=len(placements),
                fallback_tier=meta.get("fallback_tier"),
                fallback_algorithm=serving,
            )
        )
        self.metrics.on_commit(request.name, now, slo_ok)

    # -- repair handling --------------------------------------------------------
    def _schedule_repair(self, chain: CommittedChain, now: float, delay: float) -> None:
        """Schedule one repair event for ``chain``; no-op if one is pending."""
        if chain.name in self._pending_repairs:
            return
        self._pending_repairs.add(chain.name)
        self.queue.schedule(now + delay, (REPAIR_RETRY, chain.name))

    def _attempt_repair(self, chain: CommittedChain, now: float) -> None:
        outcome = self.repairer.repair(chain, now)
        self.metrics.on_repair(outcome)
        self.metrics.on_state(chain.name, now, chain.meets_slo())
        if outcome.retriable:
            self._schedule_repair(
                chain,
                now,
                self.config.policy.retry_delay(chain.repair_attempts, rng=self.rng),
            )

    def _rearm_repairs(self, now: float) -> None:
        """A cloudlet recovery returned capacity: previously hopeless repairs
        may succeed now, so exhausted chains get a fresh attempt budget."""
        for chain in self.injector.chains():
            if chain.meets_slo():
                continue
            chain.repair_attempts = 0
            self._schedule_repair(chain, now, self.config.policy.repair_delay)

    # -- the event loop ---------------------------------------------------------
    #
    # The loop is split into overridable pieces so extensions (notably the
    # chaos campaign controller in :mod:`repro.chaos.campaign`) can inject
    # their own event kinds and per-event bookkeeping without duplicating
    # the arrival/failure/repair plumbing.

    def _on_arrival(self, label: object, now: float) -> None:
        """Handle one ARRIVAL event (extension hook: degraded admission)."""
        request = make_request(
            self.settings, self.catalog, self.rng, name=f"req-{label}"
        )
        self._commit_request(request, now)

    def _on_failures(self, affected: list[CommittedChain], now: float) -> None:
        """SLO re-evaluation + repair scheduling after failure events.

        Shared by the injector's own event kinds and any scripted failure
        source (chaos storms, forced outages) an extension applies.
        """
        for chain in affected:
            slo_ok = chain.meets_slo()
            self.metrics.on_state(chain.name, now, slo_ok)
            if not slo_ok and chain.repair_attempts < self.config.policy.max_attempts:
                self._schedule_repair(chain, now, self.config.policy.repair_delay)

    def _handle_extra(self, kind: str, payload: tuple, now: float) -> bool:
        """Extension hook for event kinds the base stream does not own.

        Return True when the event was handled; the base implementation
        knows none, so an unknown kind raises in :meth:`_dispatch`.
        """
        return False

    def _after_event(self, now: float) -> None:
        """Extension hook invoked after every applied event (auditing)."""

    def _dispatch(self, kind: str, payload: tuple, now: float) -> None:
        if kind == ARRIVAL:
            self._on_arrival(payload[1], now)
        elif self.injector.handles(kind):
            affected = self.injector.handle(payload)
            self._on_failures(affected, now)
            if kind == CLOUDLET_RECOVER:
                self._rearm_repairs(now)
        elif kind == REPAIR_RETRY:
            self._pending_repairs.discard(payload[1])
            try:
                chain = self.injector.chain(payload[1])
            except KeyError:
                return
            if not chain.meets_slo():
                self._attempt_repair(chain, now)
        elif not self._handle_extra(kind, payload, now):
            raise ValidationError(f"unknown stream event kind {kind!r}")

    def _before_run(self) -> None:
        """Extension hook: schedule extra events before the loop starts."""

    def _finalize(self) -> ResilienceReport:
        used = self.ledger.total_used()
        total = self.ledger.total_initial()
        return self.metrics.finalize(
            self.config.horizon,
            event_counts=dict(self.injector.counts),
            final_utilisation=used / total if total > 0 else 0.0,
        )

    def run(self, num_requests: int) -> ResilienceReport:
        span = self.config.horizon * self.config.arrival_span
        for index in range(num_requests):
            arrival = span * (index + 1) / max(1, num_requests)
            self.queue.schedule(arrival, (ARRIVAL, index))
        self.injector.start()
        self._before_run()

        for event in self.queue.drain_until(self.config.horizon):
            payload = event.payload
            self._dispatch(payload[0], payload, event.time)
            if self.ledger.violations():
                self.metrics.on_invariant_violation()
            self._after_event(event.time)

        return self._finalize()


def run_resilient_stream(
    settings: ExperimentSettings,
    algorithm: AugmentationAlgorithm,
    num_requests: int,
    config: ResilienceConfig | None = None,
    rng: RandomState = None,
    network: MECNetwork | None = None,
) -> ResilienceReport:
    """Serve a request stream under failure injection with automatic repair.

    Parameters
    ----------
    settings:
        Workload shape (topology, catalog, chain lengths, expectations).
    algorithm:
        The augmentation algorithm used for both admission-time
        augmentation and repairs.  Pass a
        :func:`~repro.algorithms.fallback.default_fallback_chain` (or any
        :class:`FallbackAlgorithm`) for full solver fault tolerance; a
        plain feasible algorithm also works.  Randomized-rounding
        algorithms are unsuitable (their violations would corrupt the
        shared ledger).
    num_requests:
        Arrivals, evenly spread over the configured arrival span.
    config:
        Horizon and failure/repair parameters.
    rng:
        Seed or generator; a fixed seed makes the run bit-reproducible.
    network:
        Optional pre-built topology (drawn from ``settings`` otherwise).

    Returns
    -------
    ResilienceReport
        Per-request outcomes, per-chain SLO timelines, repair log, and the
        aggregate resilience metrics.
    """
    gen = as_rng(rng)
    if num_requests < 0:
        raise ValidationError(f"num_requests must be >= 0, got {num_requests}")
    if network is None:
        network = make_network(settings, gen)
    catalog = VNFCatalog.random(
        num_types=settings.num_vnf_types,
        demand_range=settings.demand_range,
        reliability_range=settings.reliability_range,
        rng=gen,
    )
    controller = ResilientStreamController(
        settings, algorithm, config or ResilienceConfig(), network, catalog, gen
    )
    return controller.run(num_requests)
