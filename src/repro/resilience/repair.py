"""Automatic re-augmentation of chains degraded below their expectation.

When failures push a chain's live reliability under ``rho_j``, the repair
controller rebuilds the paper's augmentation machinery *against the live
system state* and provisions replacements:

1. **re-seed** -- a position with zero live instances first gets one fresh
   instance on the closest up cloudlet (by hop distance from the original
   anchor) with room for its demand; without this the reliability algebra
   has nothing to multiply;
2. **re-augment** -- a fresh :class:`AugmentationProblem` is built from the
   live ledger residuals (down cloudlets are blockaded to zero, so the
   builder cannot target them), anchored at one live instance per position,
   and handed to the configured algorithm -- typically a
   :class:`~repro.algorithms.fallback.FallbackAlgorithm` so a slow or
   crashing solver degrades instead of stalling repairs;
3. **commit** -- the whole repair (re-seeds + new backups) is one ledger
   transaction: a checkpoint is taken first and any
   :class:`~repro.util.errors.CapacityError` rolls everything back, so a
   half-applied repair can never leak allocations.  Only a fully committed
   repair mutates the chain record and arms failure events for the new
   instances.

The solve step's algebra treats each position as primary-plus-new-backups
and ignores surviving surplus backups, which is *conservative* (true live
reliability is at least the problem's estimate).  To avoid systematic
over-provisioning the controller commits new placements incrementally, in
ascending ``k`` (highest marginal gain first), and stops as soon as the
*true* live reliability clears ``rho_j``.

A repair that cannot restore the SLO (no host for a dead position, solver
shortfall, capacity race) reports ``retriable`` until the policy's attempt
budget is exhausted; the stream schedules retries with exponential backoff
so repairs blocked by an outage succeed once capacity recovers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import AugmentationAlgorithm
from repro.core.problem import AugmentationProblem
from repro.netmodel.capacity import CapacityLedger
from repro.netmodel.graph import MECNetwork
from repro.netmodel.neighborhoods import NeighborhoodIndex
from repro.resilience.injector import FailureInjector
from repro.resilience.state import CommittedChain, LiveInstance
from repro.util.errors import CapacityError, ReproError, ValidationError


@dataclass(frozen=True)
class RepairPolicy:
    """Retry discipline of the repair controller.

    Attributes
    ----------
    max_attempts:
        Consecutive failed attempts per chain before it is declared
        unrepairable (the counter resets on success, and the stream
        re-arms exhausted chains when a cloudlet recovery returns
        capacity).
    repair_delay:
        Detection + provisioning latency: a degradation detected at ``t``
        is repaired at ``t + repair_delay``.  This is what makes measured
        MTTR non-zero even when every repair succeeds first try.
    backoff:
        Delay before the first retry.
    backoff_factor:
        Multiplier applied per further attempt (exponential backoff):
        retry ``n`` fires after ``backoff * factor**(n-1)``.
    max_delay:
        Ceiling on any retry delay (jitter included).  The default
        ``math.inf`` keeps pure exponential growth; long-running chaos
        campaigns cap it so a chain that has been retrying for hours still
        probes at a bounded cadence.
    jitter:
        Relative jitter fraction in ``[0, 1)``: with a generator supplied
        to :meth:`retry_delay`, the pre-cap delay is scaled by a factor
        drawn uniformly from ``[1 - jitter, 1 + jitter]``.  De-synchronises
        the retry herd after a mass failure (every chain degraded by one
        outage would otherwise retry at identical instants).  0 draws
        nothing -- byte-identical to the pre-jitter behaviour.
    """

    max_attempts: int = 4
    repair_delay: float = 0.05
    backoff: float = 0.25
    backoff_factor: float = 2.0
    max_delay: float = math.inf
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.repair_delay < 0:
            raise ValidationError(
                f"repair_delay must be >= 0, got {self.repair_delay}"
            )
        if self.backoff <= 0:
            raise ValidationError(f"backoff must be positive, got {self.backoff}")
        if self.backoff_factor < 1.0:
            raise ValidationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_delay <= 0:
            raise ValidationError(f"max_delay must be positive, got {self.max_delay}")
        if not (0.0 <= self.jitter < 1.0):
            raise ValidationError(f"jitter must be in [0, 1), got {self.jitter}")

    def retry_delay(
        self, attempt: int, rng: np.random.Generator | None = None
    ) -> float:
        """Backoff before retry number ``attempt`` (1-based).

        The deterministic schedule ``backoff * factor**(n-1)`` is monotone
        non-decreasing in ``attempt`` and capped at ``max_delay``.  With
        ``jitter > 0`` *and* a generator, the delay is additionally scaled
        by a uniform ``[1 - jitter, 1 + jitter]`` factor before the cap is
        re-applied; with ``jitter == 0`` the generator is never consulted,
        so existing seeded streams replay bit-identically.
        """
        base = min(
            self.backoff * self.backoff_factor ** max(0, attempt - 1), self.max_delay
        )
        if self.jitter > 0.0 and rng is not None:
            base = min(
                base * (1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))),
                self.max_delay,
            )
        return base


@dataclass(frozen=True)
class RepairOutcome:
    """What one repair attempt achieved.

    Attributes
    ----------
    chain:
        The chain's name.
    time:
        Stream time of the attempt.
    attempt:
        1-based consecutive attempt number for this degradation.
    restored:
        Whether live reliability is back at/above ``rho_j``.
    retriable:
        Whether the stream should schedule another attempt.
    placed:
        Replacement instances committed by this attempt.
    reliability:
        Live reliability after the attempt.
    reason:
        Human-readable note (``"restored"``, ``"no host for dead
        position"``, ``"solver shortfall"``, ``"capacity race"``, ...).
    """

    chain: str
    time: float
    attempt: int
    restored: bool
    retriable: bool
    placed: int
    reliability: float
    reason: str


class _Unrepairable(ReproError):
    """Internal: a dead position has no feasible host right now."""


class RepairController:
    """Detects and repairs chains whose live reliability fell below ``rho_j``."""

    def __init__(
        self,
        network: MECNetwork,
        ledger: CapacityLedger,
        injector: FailureInjector,
        algorithm: AugmentationAlgorithm,
        radius: int,
        policy: RepairPolicy | None = None,
        neighborhoods: NeighborhoodIndex | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.network = network
        self.ledger = ledger
        self.injector = injector
        self.algorithm = algorithm
        self.radius = radius
        self.policy = policy or RepairPolicy()
        self.neighborhoods = neighborhoods or network.neighborhoods(radius)
        self.rng = rng
        self._seq = 0  # uniquifies replacement-instance tags

    # -- helpers ----------------------------------------------------------------
    def _next_tag(self, chain: CommittedChain, position: int) -> str:
        self._seq += 1
        return f"repair:{chain.name}#p{position}.{self._seq}"

    def _pick_host(self, anchor: int, demand: float) -> int | None:
        """Closest up cloudlet (by hops from ``anchor``, then id) that fits.

        Down cloudlets are excluded implicitly: their blockade leaves zero
        residual, so :meth:`CapacityLedger.fits` rejects them.
        """
        candidates = [
            v for v in self.network.cloudlets if self.ledger.fits(v, demand)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda v: (self.network.hop_distance(anchor, v), v))

    @staticmethod
    def _reliability_from_counts(chain: CommittedChain, counts: list[int]) -> float:
        reliability = 1.0
        for func, n in zip(chain.request.chain, counts):
            if n == 0:
                return 0.0
            reliability *= 1.0 - (1.0 - func.reliability) ** n
        return reliability

    # -- the repair transaction -------------------------------------------------
    def repair(self, chain: CommittedChain, now: float) -> RepairOutcome:
        """One transactional repair attempt; never raises on failure paths."""
        if chain.meets_slo():
            chain.repair_attempts = 0
            return RepairOutcome(
                chain=chain.name,
                time=now,
                attempt=0,
                restored=True,
                retriable=False,
                placed=0,
                reliability=chain.live_reliability(),
                reason="already healthy",
            )

        chain.repair_attempts += 1
        attempt = chain.repair_attempts
        retriable = attempt < self.policy.max_attempts
        checkpoint = self.ledger.checkpoint()
        new_instances: list[LiveInstance] = []
        counts = chain.live_counts()

        def fail(reason: str) -> RepairOutcome:
            self.ledger.rollback(checkpoint)
            return RepairOutcome(
                chain=chain.name,
                time=now,
                attempt=attempt,
                restored=False,
                retriable=retriable,
                placed=0,
                reliability=chain.live_reliability(),
                reason=reason,
            )

        try:
            # phase 1: re-seed dead positions
            for position, func in enumerate(chain.request.chain):
                if counts[position] > 0:
                    continue
                host = self._pick_host(chain.anchors[position], func.demand)
                if host is None:
                    raise _Unrepairable(
                        f"no host for dead position {position} of {chain.name}"
                    )
                tag = self._next_tag(chain, position)
                self.ledger.allocate(host, func.demand, tag=tag)
                new_instances.append(
                    LiveInstance(
                        position=position,
                        cloudlet=host,
                        demand=func.demand,
                        reliability=func.reliability,
                        tag=tag,
                    )
                )
                counts[position] += 1

            # phase 2: re-augment toward rho_j on live residuals
            if not chain.request.meets_expectation(
                self._reliability_from_counts(chain, counts)
            ):
                anchors = self._anchors_with(chain, new_instances)
                problem = AugmentationProblem.build(
                    self.network,
                    chain.request,
                    anchors,
                    radius=self.radius,
                    residuals=self.ledger.residuals(),
                    neighborhoods=self.neighborhoods,
                )
                result = self.algorithm.solve(problem, rng=self.rng)
                # commit in ascending k (largest marginal gain first) and
                # stop once the *true* live count clears the expectation
                for placement in sorted(
                    result.solution.placements, key=lambda p: (p.k, p.position)
                ):
                    if chain.request.meets_expectation(
                        self._reliability_from_counts(chain, counts)
                    ):
                        break
                    tag = self._next_tag(chain, placement.position)
                    self.ledger.allocate(placement.bin, placement.demand, tag=tag)
                    func = chain.request.chain[placement.position]
                    new_instances.append(
                        LiveInstance(
                            position=placement.position,
                            cloudlet=placement.bin,
                            demand=placement.demand,
                            reliability=func.reliability,
                            tag=tag,
                        )
                    )
                    counts[placement.position] += 1
        except CapacityError:
            return fail("capacity race")
        except _Unrepairable as exc:
            return fail(str(exc))
        except ReproError as exc:
            # solver-side failure (e.g. an exhausted fallback chain)
            return fail(f"solver failure: {type(exc).__name__}")

        # commit: the transaction is complete, adopt the new instances
        chain.instances.extend(new_instances)
        self.injector.attach_instances(chain, new_instances, now)
        reliability = chain.live_reliability()
        restored = chain.meets_slo()
        if restored:
            chain.repair_attempts = 0
        return RepairOutcome(
            chain=chain.name,
            time=now,
            attempt=attempt,
            restored=restored,
            retriable=not restored and retriable,
            placed=len(new_instances),
            reliability=reliability,
            reason="restored" if restored else "solver shortfall",
        )

    def _anchors_with(
        self, chain: CommittedChain, pending: list[LiveInstance]
    ) -> tuple[int, ...]:
        """Per-position anchors counting instances committed *and* pending
        re-seeds of the in-flight transaction."""
        anchors = []
        for position, original in enumerate(chain.anchors):
            live = chain.instances_at(position)
            live.extend(inst for inst in pending if inst.position == position)
            if not live:
                raise ValidationError(
                    f"chain {chain.name!r}: position {position} has no live instance"
                )
            hosts = sorted(inst.cloudlet for inst in live)
            anchors.append(original if original in hosts else hosts[0])
        return tuple(anchors)
