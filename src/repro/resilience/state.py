"""Live state of committed chains: what is actually up *right now*.

The paper's algebra reasons about the *provisioned* redundancy of a chain;
this module tracks the *surviving* redundancy as runtime failures destroy
instances.  Every placed instance -- primary, augmentation backup, or
repair replacement -- is a :class:`LiveInstance` with its own capacity
allocation tag, so retiring it (failure, cloudlet outage) releases exactly
its share of the ledger via
:meth:`~repro.netmodel.capacity.CapacityLedger.release_tag`.

The key quantity is :meth:`CommittedChain.live_reliability`: with ``n_i``
live instances at position ``i``, the position survives with probability
``1 - (1 - r_i)^{n_i}`` (Eq. 1 evaluated on the *live* count), and the
chain with the product over positions.  A position with zero live
instances makes the chain dead (reliability 0) until a repair re-seeds it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netmodel.vnf import Request


@dataclass
class LiveInstance:
    """One placed VNF instance and its runtime state.

    Attributes
    ----------
    position:
        Chain position the instance serves.
    cloudlet:
        Hosting cloudlet node id.
    demand:
        Computing capacity the instance consumes (MHz).
    reliability:
        The instance's reliability ``r_i`` (its function's).
    tag:
        The unique ledger tag of this instance's allocation -- releasing
        the tag returns exactly this instance's capacity.
    alive:
        Whether the instance is currently up.  Failed instances stay in
        the record (dead) for auditability; their allocations are released.
    """

    position: int
    cloudlet: int
    demand: float
    reliability: float
    tag: str
    alive: bool = True


@dataclass
class CommittedChain:
    """A committed request and the live state of all its instances.

    Attributes
    ----------
    request:
        The admitted request (chain + expectation ``rho_j``).
    instances:
        Every instance ever placed for this chain, dead ones included.
    anchors:
        The original primary placement -- repair prefers to re-seed a dead
        position close to where its primary stood.
    committed_at:
        Stream time at which the chain was committed.
    met_at_commit:
        Whether the committed placement satisfied ``rho_j``.
    repair_attempts:
        Consecutive failed repair attempts (reset on a successful repair);
        drives the repair controller's exponential backoff.
    """

    request: Request
    instances: list[LiveInstance] = field(default_factory=list)
    anchors: tuple[int, ...] = ()
    committed_at: float = 0.0
    met_at_commit: bool = False
    repair_attempts: int = 0

    @property
    def name(self) -> str:
        """The request's name -- the chain's identity in logs and events."""
        return self.request.name

    @property
    def expectation(self) -> float:
        """The reliability expectation ``rho_j`` repairs must restore."""
        return self.request.expectation

    def live_instances(self) -> list[LiveInstance]:
        """All currently-up instances."""
        return [inst for inst in self.instances if inst.alive]

    def live_counts(self) -> list[int]:
        """Live instance count per chain position."""
        counts = [0] * self.request.chain.length
        for inst in self.instances:
            if inst.alive:
                counts[inst.position] += 1
        return counts

    def live_reliability(self) -> float:
        """Chain reliability over *live* instances only.

        ``prod_i (1 - (1 - r_i)^{n_i})`` with ``n_i`` live instances at
        position ``i``; 0.0 when any position has none.
        """
        counts = self.live_counts()
        reliability = 1.0
        for func, n in zip(self.request.chain, counts):
            if n == 0:
                return 0.0
            reliability *= 1.0 - (1.0 - func.reliability) ** n
        return reliability

    def meets_slo(self) -> bool:
        """Whether the live configuration still satisfies ``rho_j``."""
        return self.request.meets_expectation(self.live_reliability())

    def instances_at(self, position: int, alive_only: bool = True) -> list[LiveInstance]:
        """Instances of one chain position, optionally live only."""
        return [
            inst
            for inst in self.instances
            if inst.position == position and (inst.alive or not alive_only)
        ]

    def kill_on_cloudlet(self, cloudlet: int) -> list[LiveInstance]:
        """Mark every live instance hosted on ``cloudlet`` dead.

        Returns the instances killed (their tags identify the allocations
        the caller must release).  Used by cloudlet-outage handling.
        """
        killed = []
        for inst in self.instances:
            if inst.alive and inst.cloudlet == cloudlet:
                inst.alive = False
                killed.append(inst)
        return killed

    def describe(self) -> str:
        """One-line live-state summary for logs."""
        counts = self.live_counts()
        return (
            f"{self.name}: live={counts} reliability={self.live_reliability():.4f} "
            f"rho={self.expectation:.4f} slo_ok={self.meets_slo()}"
        )
