"""Instance failure/repair processes calibrated to a target availability.

Every VNF instance alternates between UP and DOWN states with exponential
sojourn times: time-to-failure ~ Exp(1/MTTF), time-to-repair ~ Exp(1/MTTR).
The steady-state availability of such an alternating renewal process is

    A = MTTF / (MTTF + MTTR)

so, given the static model's per-instance reliability ``r`` and a chosen
mean repair time, the calibration

    MTTF = MTTR * r / (1 - r)

makes the *time-average* probability of being up equal ``r`` -- the
quantity the paper's reliability algebra multiplies.  All instances share
the MTTR scale (a deployment property: how fast an idle VNF respawns);
their MTTFs differ with their reliabilities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.util.errors import ValidationError


def rates_for_reliability(r: float, mttr: float = 1.0) -> tuple[float, float]:
    """``(MTTF, MTTR)`` whose steady-state availability equals ``r``.

    Raises for ``r`` outside ``(0, 1)`` -- a perfect (``r = 1``) instance
    never fails and needs no process; the simulator special-cases it.
    """
    if not (0.0 < r < 1.0):
        raise ValidationError(f"calibration needs r in (0, 1), got {r}")
    if mttr <= 0:
        raise ValidationError(f"mttr must be positive, got {mttr}")
    mttf = mttr * r / (1.0 - r)
    return mttf, mttr


@dataclass
class InstanceProcess:
    """The UP/DOWN state of one placed VNF instance.

    Attributes
    ----------
    position:
        Chain position this instance serves.
    cloudlet:
        Hosting cloudlet (drives failover hop distances).
    mttf, mttr:
        Mean sojourn times; ``math.inf`` MTTF means a never-failing
        instance (``r = 1``).
    up:
        Current state.
    """

    position: int
    cloudlet: int
    mttf: float
    mttr: float
    up: bool = True

    def sample_uptime(self, rng: np.random.Generator) -> float:
        """Draw the next time-to-failure (inf for perfect instances)."""
        if math.isinf(self.mttf):
            return math.inf
        return float(rng.exponential(self.mttf))

    def sample_downtime(self, rng: np.random.Generator) -> float:
        """Draw the next time-to-repair."""
        return float(rng.exponential(self.mttr))

    @property
    def availability(self) -> float:
        """Steady-state availability implied by the rates."""
        if math.isinf(self.mttf):
            return 1.0
        return self.mttf / (self.mttf + self.mttr)


@dataclass
class CloudletProcess:
    """The UP/DOWN state of a whole cloudlet (correlated-failure extension).

    A cloudlet outage (power loss, uplink cut, host crash) takes down every
    instance it hosts at once -- the failure correlation the paper's
    independence-based algebra cannot see and
    :mod:`repro.netmodel.failures` measures.  Sojourn times are exponential
    like the instance processes: up ~ Exp(MTBF), down ~ Exp(MTTR).

    Attributes
    ----------
    cloudlet:
        The cloudlet node id.
    mtbf:
        Mean up time between outages; ``math.inf`` means the cloudlet
        never fails (disables the process).
    mttr:
        Mean outage duration.
    up:
        Current state.
    """

    cloudlet: int
    mtbf: float
    mttr: float
    up: bool = True

    def __post_init__(self) -> None:
        if self.mtbf <= 0:
            raise ValidationError(f"cloudlet mtbf must be positive, got {self.mtbf}")
        if self.mttr <= 0 or math.isinf(self.mttr):
            raise ValidationError(f"cloudlet mttr must be positive and finite, got {self.mttr}")

    def sample_uptime(self, rng: np.random.Generator) -> float:
        """Draw the next time-to-outage (inf for never-failing cloudlets)."""
        if math.isinf(self.mtbf):
            return math.inf
        return float(rng.exponential(self.mtbf))

    def sample_downtime(self, rng: np.random.Generator) -> float:
        """Draw the duration of the next outage."""
        return float(rng.exponential(self.mttr))

    @property
    def availability(self) -> float:
        """Steady-state availability implied by the rates."""
        if math.isinf(self.mtbf):
            return 1.0
        return self.mtbf / (self.mtbf + self.mttr)
