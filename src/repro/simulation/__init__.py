"""Discrete-event failure/recovery simulation of placed chains.

The static model of the paper treats reliability as a probability and the
locality radius ``l`` as a latency knob it never quantifies ("the value of
l is used to control the latency of updating its secondary VNF states").
This subpackage makes that trade-off measurable by simulating a placed
chain *over time*:

* every VNF instance alternates UP/DOWN through exponential
  time-to-failure / time-to-repair processes calibrated so its *steady-
  state availability equals its reliability* ``r`` (the quantity the
  static model reasons about -- the reliability/availability identification
  is standard in the literature the paper builds on);
* each chain position serves from one live instance at a time; when the
  serving instance fails, service *fails over* to a live backup after a
  switchover delay proportional to the hop distance between the two
  cloudlets -- exactly the state-synchronisation latency the ``l``-hop
  constraint exists to bound;
* the chain is up iff every position is serving.

The simulator reports measured chain availability, its decomposition into
"no live instance" downtime (what Eq. 1 captures) and "switchover"
downtime (what the static model ignores and ``l`` controls), failover
counts, and mean switchover times.  With zero switchover delay, measured
availability converges to the static ``prod_i R_i`` -- a second,
time-domain validation of the reliability algebra.
"""

from repro.simulation.engine import EventQueue, ScheduledEvent, stable_event_key
from repro.simulation.lifecycle import (
    CloudletProcess,
    InstanceProcess,
    rates_for_reliability,
)
from repro.simulation.runner import SimulationConfig, SimulationReport, simulate_solution

__all__ = [
    "CloudletProcess",
    "EventQueue",
    "InstanceProcess",
    "ScheduledEvent",
    "SimulationConfig",
    "SimulationReport",
    "rates_for_reliability",
    "simulate_solution",
    "stable_event_key",
]
