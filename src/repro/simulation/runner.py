"""The chain failover simulator.

Simulates one placed chain (primaries + committed backups) over a time
horizon.  Position service semantics:

* a position serves from exactly one live instance at a time, starting on
  its primary;
* when the serving instance fails, service switches to the *nearest live*
  instance of the position (fewest hops from the failed instance's
  cloudlet), after a switchover delay

      d = base_delay + per_hop_delay * hops(old cloudlet, new cloudlet)

  -- the state-synchronisation cost the paper's ``l``-hop constraint is
  designed to bound.  If the chosen target fails mid-switchover, a new
  target is selected immediately (the elapsed wait is not refunded);
* with no live instance the position is dead until a repair completes,
  then a switchover from the last serving cloudlet begins;
* the chain is up iff every position is serving.  Downtime is attributed
  to ``dead`` when any position has no live instance, else to
  ``switchover`` -- separating what Eq. 1 models from what it ignores.

The simulation is event-driven (failures, repairs, switchover
completions); stale switchover completions are invalidated by per-position
epoch counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.problem import AugmentationProblem
from repro.core.solution import AugmentationSolution
from repro.simulation.engine import EventQueue
from repro.simulation.lifecycle import InstanceProcess, rates_for_reliability
from repro.util.errors import ValidationError
from repro.util.rng import RandomState, as_rng

#: Position service states.
_SERVING, _SWITCHING, _DEAD = "serving", "switching", "dead"


@dataclass(frozen=True)
class SimulationConfig:
    """Failure-process and switchover parameters.

    Attributes
    ----------
    horizon:
        Simulated time span (in MTTR units when ``mttr=1``).
    mttr:
        Mean time to repair of every instance (sets the time scale).
    base_delay:
        Fixed component of a switchover (activation cost).
    per_hop_delay:
        Per-hop component -- the state-sync latency the radius ``l`` caps.
    """

    horizon: float = 20_000.0
    mttr: float = 1.0
    base_delay: float = 0.005
    per_hop_delay: float = 0.01

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValidationError(f"horizon must be positive, got {self.horizon}")
        if self.mttr <= 0:
            raise ValidationError(f"mttr must be positive, got {self.mttr}")
        if self.base_delay < 0 or self.per_hop_delay < 0:
            raise ValidationError("switchover delays must be non-negative")


@dataclass
class SimulationReport:
    """Measured behaviour of one simulated chain.

    All times are in simulation units; fractions are of the horizon.
    """

    horizon: float
    uptime: float
    downtime_dead: float
    downtime_switchover: float
    failovers: int
    switchover_time_total: float
    per_position_serving: list[float]
    static_prediction: float

    @property
    def availability(self) -> float:
        """Measured chain availability (uptime fraction)."""
        return self.uptime / self.horizon

    @property
    def dead_fraction(self) -> float:
        """Fraction of time some position had no live instance."""
        return self.downtime_dead / self.horizon

    @property
    def switchover_fraction(self) -> float:
        """Fraction of time lost to switchovers only."""
        return self.downtime_switchover / self.horizon

    @property
    def mean_switchover(self) -> float:
        """Mean duration of a completed switchover."""
        if self.failovers == 0:
            return 0.0
        return self.switchover_time_total / self.failovers


@dataclass
class _PositionState:
    status: str = _SERVING
    serving_instance: int = -1
    serving_cloudlet: int = -1
    target_instance: int = -1
    switch_started: float = 0.0
    epoch: int = 0  # invalidates in-flight switchover completions


def _build_instances(
    problem: AugmentationProblem,
    solution: AugmentationSolution,
    config: SimulationConfig,
) -> list[InstanceProcess]:
    instances: list[InstanceProcess] = []
    for position, func in enumerate(problem.request.chain):
        hosts = [problem.primary_placement[position]]
        hosts.extend(
            p.bin for p in solution.placements if p.position == position
        )
        for cloudlet in hosts:
            if func.reliability >= 1.0:
                mttf: float = math.inf
                mttr = config.mttr
            else:
                mttf, mttr = rates_for_reliability(func.reliability, config.mttr)
            instances.append(
                InstanceProcess(position=position, cloudlet=cloudlet, mttf=mttf, mttr=mttr)
            )
    return instances


def simulate_solution(
    problem: AugmentationProblem,
    solution: AugmentationSolution,
    config: SimulationConfig | None = None,
    rng: RandomState = None,
) -> SimulationReport:
    """Simulate the placed chain and measure its availability.

    Parameters
    ----------
    problem, solution:
        The placed chain (primaries from the problem, backups from the
        solution).
    config:
        Time-scale and switchover parameters.
    rng:
        Seed/generator for the failure processes.
    """
    config = config or SimulationConfig()
    gen = as_rng(rng)
    instances = _build_instances(problem, solution, config)
    chain_length = problem.request.chain.length

    hop_cache: dict[tuple[int, int], int] = {}

    def hops(u: int, v: int) -> int:
        if u == v:
            return 0
        key = (u, v) if u <= v else (v, u)
        if key not in hop_cache:
            hop_cache[key] = problem.network.hop_distance(*key)
        return hop_cache[key]

    def switch_delay(from_cloudlet: int, to_cloudlet: int) -> float:
        return config.base_delay + config.per_hop_delay * hops(from_cloudlet, to_cloudlet)

    by_position: dict[int, list[int]] = {}
    for idx, inst in enumerate(instances):
        by_position.setdefault(inst.position, []).append(idx)

    # initial service state: every position serves from its primary (the
    # first instance built for it)
    states = [_PositionState() for _ in range(chain_length)]
    for position in range(chain_length):
        first = by_position[position][0]
        states[position].serving_instance = first
        states[position].serving_cloudlet = instances[first].cloudlet

    queue = EventQueue()
    for idx, inst in enumerate(instances):
        t_fail = inst.sample_uptime(gen)
        if math.isfinite(t_fail):
            queue.schedule(t_fail, ("fail", idx))

    def nearest_live(position: int, from_cloudlet: int) -> int | None:
        best, best_hops = None, math.inf
        for idx in by_position[position]:
            if instances[idx].up:
                d = hops(from_cloudlet, instances[idx].cloudlet)
                if d < best_hops:
                    best, best_hops = idx, d
        return best

    def begin_switchover(position: int, target: int, now: float) -> None:
        state = states[position]
        state.status = _SWITCHING
        state.target_instance = target
        state.switch_started = now
        state.epoch += 1
        delay = switch_delay(state.serving_cloudlet, instances[target].cloudlet)
        queue.schedule(now + delay, ("switched", position, target, state.epoch))

    # accounting
    uptime = downtime_dead = downtime_switch = 0.0
    serving_time = [0.0] * chain_length
    failovers = 0
    switch_total = 0.0
    last_time = 0.0

    def accumulate(now: float) -> None:
        nonlocal uptime, downtime_dead, downtime_switch
        span = now - last_time
        if span <= 0:
            return
        statuses = [s.status for s in states]
        if any(s == _DEAD for s in statuses):
            downtime_dead += span
        elif any(s == _SWITCHING for s in statuses):
            downtime_switch += span
        else:
            uptime += span
        for position, status in enumerate(statuses):
            if status == _SERVING:
                serving_time[position] += span

    for event in queue.drain_until(config.horizon):
        now = event.time
        accumulate(now)
        last_time = now
        kind = event.payload[0]

        if kind == "fail":
            idx = event.payload[1]
            inst = instances[idx]
            inst.up = False
            queue.schedule(now + inst.sample_downtime(gen), ("repair", idx))
            state = states[inst.position]
            if state.status == _SERVING and state.serving_instance == idx:
                target = nearest_live(inst.position, state.serving_cloudlet)
                if target is None:
                    state.status = _DEAD
                    state.epoch += 1
                else:
                    begin_switchover(inst.position, target, now)
            elif state.status == _SWITCHING and state.target_instance == idx:
                target = nearest_live(inst.position, state.serving_cloudlet)
                if target is None:
                    state.status = _DEAD
                    state.epoch += 1
                else:
                    begin_switchover(inst.position, target, now)

        elif kind == "repair":
            idx = event.payload[1]
            inst = instances[idx]
            inst.up = True
            t_fail = inst.sample_uptime(gen)
            if math.isfinite(t_fail):
                queue.schedule(now + t_fail, ("fail", idx))
            state = states[inst.position]
            if state.status == _DEAD:
                begin_switchover(inst.position, idx, now)

        elif kind == "switched":
            _, position, target, epoch = event.payload
            state = states[position]
            if state.epoch != epoch:
                continue  # superseded by a later failure/re-dispatch
            # the target is live (its failure would have bumped the epoch)
            state.status = _SERVING
            state.serving_instance = target
            state.serving_cloudlet = instances[target].cloudlet
            failovers += 1
            switch_total += now - state.switch_started

    accumulate(config.horizon)

    counts = solution.backup_counts(chain_length)
    static = problem.reliability_from_counts(counts)
    return SimulationReport(
        horizon=config.horizon,
        uptime=uptime,
        downtime_dead=downtime_dead,
        downtime_switchover=downtime_switch,
        failovers=failovers,
        switchover_time_total=switch_total,
        per_position_serving=[t / config.horizon for t in serving_time],
        static_prediction=static,
    )
