"""A minimal discrete-event engine: time-ordered event queue.

Deliberately tiny -- a binary heap of ``(time, sequence, payload)`` with
stable FIFO ordering among simultaneous events.  The chain simulator's
event payloads are plain tuples; no process framework is needed at this
scale, and keeping the engine dumb makes its behaviour trivially testable.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.util.errors import ValidationError


@dataclass(order=True, frozen=True)
class ScheduledEvent:
    """One queued event: fires at ``time``; FIFO among equal times."""

    time: float
    sequence: int
    payload: Any = field(compare=False)


class EventQueue:
    """Time-ordered event queue with monotonicity checking.

    Popping returns events in non-decreasing time order; scheduling an
    event before the last popped time raises (a causality bug in the
    caller, better loud than silent).
    """

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Time of the most recently popped event (0.0 initially)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(self, time: float, payload: Any) -> ScheduledEvent:
        """Queue ``payload`` to fire at ``time`` (>= current time)."""
        if time < self._now - 1e-12:
            raise ValidationError(
                f"cannot schedule at t={time} before current time {self._now}"
            )
        event = ScheduledEvent(time, next(self._counter), payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> ScheduledEvent:
        """Remove and return the earliest event, advancing ``now``."""
        if not self._heap:
            raise ValidationError("pop from an empty event queue")
        event = heapq.heappop(self._heap)
        self._now = event.time
        return event

    def drain_until(self, horizon: float) -> Iterator[ScheduledEvent]:
        """Yield events in order while their time is <= ``horizon``."""
        while self._heap and self._heap[0].time <= horizon:
            yield self.pop()
