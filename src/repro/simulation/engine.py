"""A minimal discrete-event engine: time-ordered event queue.

Deliberately tiny -- a binary heap of ``(time, sequence, payload)`` with
stable FIFO ordering among simultaneous events.  The chain simulator's
event payloads are plain tuples; no process framework is needed at this
scale, and keeping the engine dumb makes its behaviour trivially testable.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.util.errors import ValidationError


def stable_event_key(time: float, payload: Any) -> tuple:
    """Total order for batches of events scheduled together.

    Ties at the same timestamp are broken by the payload's event kind and
    then by the repr of its identifying fields -- a pure function of the
    event's *content*, never of dict/set iteration order or the Python
    hash seed.  Scheduling a batch in this order makes the queue's FIFO
    tie-break (insertion sequence) reproducible bit-for-bit across
    processes and ``PYTHONHASHSEED`` values.
    """
    if isinstance(payload, tuple) and payload:
        kind = str(payload[0])
        rest = tuple(repr(part) for part in payload[1:])
    else:  # pragma: no cover - payloads are tuples everywhere in this repo
        kind = type(payload).__name__
        rest = (repr(payload),)
    return (time, kind, rest)


@dataclass(order=True, frozen=True)
class ScheduledEvent:
    """One queued event: fires at ``time``; FIFO among equal times."""

    time: float
    sequence: int
    payload: Any = field(compare=False)


class EventQueue:
    """Time-ordered event queue with monotonicity checking.

    Popping returns events in non-decreasing time order; scheduling an
    event before the last popped time raises (a causality bug in the
    caller, better loud than silent).
    """

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Time of the most recently popped event (0.0 initially)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(self, time: float, payload: Any) -> ScheduledEvent:
        """Queue ``payload`` to fire at ``time`` (>= current time)."""
        if time < self._now - 1e-12:
            raise ValidationError(
                f"cannot schedule at t={time} before current time {self._now}"
            )
        event = ScheduledEvent(time, next(self._counter), payload)
        heapq.heappush(self._heap, event)
        return event

    def schedule_batch(
        self, events: Iterable[tuple[float, Any]]
    ) -> list[ScheduledEvent]:
        """Schedule several ``(time, payload)`` pairs in a stable order.

        The batch is sorted by :func:`stable_event_key` before insertion,
        so events sharing a timestamp acquire a deterministic FIFO order
        regardless of the order the caller produced them in (e.g. from a
        dict or set).  Use this whenever more than one event is scheduled
        at once and any two could share a timestamp.
        """
        ordered = sorted(events, key=lambda ev: stable_event_key(ev[0], ev[1]))
        return [self.schedule(time, payload) for time, payload in ordered]

    def pop(self) -> ScheduledEvent:
        """Remove and return the earliest event, advancing ``now``."""
        if not self._heap:
            raise ValidationError("pop from an empty event queue")
        event = heapq.heappop(self._heap)
        self._now = event.time
        return event

    def drain_until(self, horizon: float) -> Iterator[ScheduledEvent]:
        """Yield events in order while their time is <= ``horizon``."""
        while self._heap and self._heap[0].time <= horizon:
            yield self.pop()
