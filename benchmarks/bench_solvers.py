"""Ablation: HiGHS MILP vs the from-scratch branch-and-bound.

Measures both exact backends on augmentation models of increasing size and
verifies they return identical optima.  The pure-Python solver exists to
keep the reproduction self-contained (no commercial solver); this bench
quantifies what that costs.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, emit_json
from repro.experiments.settings import ExperimentSettings
from repro.experiments.workload import make_trial
from repro.solvers.ilp import solve_ilp
from repro.solvers.model import build_model
from repro.util.tables import format_table


def _model(num_aps: int, length: int, seed: int):
    from repro.core.items import ItemGenerationConfig

    settings = ExperimentSettings(
        num_aps=num_aps, cloudlet_fraction=0.2, sfc_length=length, trials=1
    )
    # cap tail items: the pure-Python B&B pays minutes proving 1e-6 gaps
    # through ~1e-7-gain tails (see its docstring); the cap keeps the two
    # backends comparable on the same moderate-size models
    problem = make_trial(
        settings,
        rng=seed,
        item_config=ItemGenerationConfig(max_backups_per_function=5),
    ).problem
    if problem.num_items == 0:
        pytest.skip("degenerate draw")
    return build_model(problem)


@pytest.mark.parametrize("backend", ["highs", "bnb"])
def bench_exact_backends_small(benchmark, backend):
    model = _model(num_aps=30, length=4, seed=11)
    solution = benchmark(solve_ilp, model, backend)
    assert solution.total_gain >= 0


def bench_exact_backends_medium_highs(benchmark):
    model = _model(num_aps=100, length=8, seed=12)
    solution = benchmark(solve_ilp, model, "highs")
    assert solution.total_gain >= 0


def bench_solver_agreement_report(benchmark, results_dir):
    def crosscheck():
        rows = []
        for num_aps, length, seed in [(20, 3, 1), (30, 4, 2), (40, 5, 3)]:
            model = _model(num_aps, length, seed)
            highs = solve_ilp(model, backend="highs")
            bnb = solve_ilp(model, backend="bnb")
            rows.append(
                [
                    f"|V|={num_aps}, L={length}",
                    model.num_vars,
                    highs.total_gain,
                    bnb.total_gain,
                    bnb.meta["nodes"],
                ]
            )
            assert abs(highs.total_gain - bnb.total_gain) < 2e-6
        return rows

    rows = benchmark.pedantic(crosscheck, rounds=1, iterations=1)
    emit(
        results_dir,
        "solver_backends",
        format_table(
            ["instance", "vars", "gain(HiGHS)", "gain(B&B)", "B&B nodes"],
            rows,
            title="Exact backends agree (from-scratch B&B vs HiGHS)",
        ),
    )
    emit_json(
        results_dir,
        "BENCH_solver_backends",
        config={
            "workload": "exact augmentation models, HiGHS vs from-scratch B&B",
            "grid": [[20, 3, 1], [30, 4, 2], [40, 5, 3]],
            "agreement_tolerance": 2e-6,
        },
        points=[
            {
                "instance": instance,
                "vars": num_vars,
                "gain_highs": gain_highs,
                "gain_bnb": gain_bnb,
                "bnb_nodes": nodes,
            }
            for instance, num_vars, gain_highs, gain_bnb, nodes in rows
        ],
    )
