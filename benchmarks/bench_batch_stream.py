"""Extension bench: system-level request stream on shared capacity.

Beyond the paper's per-request evaluation: admit and augment a stream of
requests whose backups accumulate on a shared ledger, comparing the
heuristic against the exact ILP and greedy as the *per-request* augmenter.
Reports acceptance rate, expectation-met rate, and final utilisation --
the operator-facing metrics the per-request figures cannot show.
"""

from __future__ import annotations

from benchmarks.conftest import trials_per_point, emit, emit_json
from repro.algorithms.baselines import GreedyGain
from repro.algorithms.heuristic import MatchingHeuristic
from repro.algorithms.ilp_exact import ILPAlgorithm
from repro.experiments.batch import run_request_stream
from repro.experiments.settings import DEFAULT_SETTINGS
from repro.util.rng import as_rng, spawn_rng
from repro.util.tables import format_table

NUM_REQUESTS = 60


def bench_request_stream(benchmark, results_dir):
    streams = max(3, trials_per_point() // 2)
    algorithms = [MatchingHeuristic(), ILPAlgorithm(), GreedyGain()]

    def sweep():
        rows = []
        for algorithm in algorithms:
            acc = met = rel = util = 0.0
            for child in spawn_rng(as_rng(41), streams):
                report = run_request_stream(
                    DEFAULT_SETTINGS, algorithm, NUM_REQUESTS, rng=child
                )
                acc += report.acceptance_rate
                met += report.expectation_met_rate
                rel += report.mean_reliability
                util += report.final_utilisation
            rows.append(
                [
                    algorithm.name,
                    acc / streams,
                    met / streams,
                    rel / streams,
                    util / streams,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        results_dir,
        "batch_stream",
        format_table(
            ["augmenter", "acceptance", "SLO met", "mean rel", "utilisation"],
            rows,
            title=(
                f"Request stream of {NUM_REQUESTS} on shared capacity "
                f"({streams} streams/algorithm)"
            ),
        ),
    )

    emit_json(
        results_dir,
        "BENCH_batch_stream",
        config={
            "workload": "shared-ledger request stream, per-request augmenters",
            "num_requests": NUM_REQUESTS,
            "streams_per_algorithm": streams,
            "seed": 41,
        },
        points=[
            {
                "augmenter": name,
                "acceptance_rate": acceptance,
                "expectation_met_rate": met,
                "mean_reliability": reliability,
                "final_utilisation": utilisation,
            }
            for name, acceptance, met, reliability, utilisation in rows
        ],
    )

    by_name = {row[0]: row for row in rows}
    # all augmenters must keep the shared ledger feasible
    for row in rows:
        assert row[4] <= 1.0 + 1e-9
    # the no-violation algorithms should all achieve decent SLO rates
    assert by_name["Heuristic"][2] > 0.3
