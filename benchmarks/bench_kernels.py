"""Array kernels vs scalar construction at the Figure 3 topology scale.

Instance construction -- the ``l``-hop neighborhoods plus the BMCGAP item
generation of :meth:`AugmentationProblem.build` -- dominates the per-request
cost outside the matching rounds.  The array kernels
(:mod:`repro.kernels`) replace the per-source deque BFS with one CSR
frontier expansion per request chain and the per-bin Python loops with bulk
NumPy expressions, bit-identically (``tests/test_kernels_differential.py``).

This bench measures that replacement on the paper's Figure 3 workload
shape: |V| = 100 AP topologies with 10% cloudlets, chains of length 3..10,
``l = 1``, swept over the figure's residual-capacity fractions.  Before
any timing, every instance is built with kernels on *and* off and the item
sequences are asserted identical, so the timings compare equal work.

Per pass the networks are re-wrapped (fresh graph objects) and every
kernel cache is dropped, so each pass is cache-cold and each topology
serves exactly one request -- the *hardest* shape for the kernels, with
no cross-request amortisation (the batch harness reuses one topology for
a whole request stream).  Timing is min-of-reps with the engines
alternated.  Speedup grows with construction volume: at scarce residual
fractions few items exist and the scalar path has little work left to
beat, so the headline >=2x shows on the item-heavy rows.

Run standalone for a quick smoke check (used by CI)::

    python benchmarks/bench_kernels.py --quick
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: bootstrap repo + src onto the path
    _root = Path(__file__).resolve().parent.parent
    for entry in (str(_root), str(_root / "src")):
        if entry not in sys.path:
            sys.path.insert(0, entry)

from benchmarks.conftest import (
    RESULTS_DIR,
    emit,
    emit_json,
    full_grid,
    trials_per_point,
)
from repro.core.problem import AugmentationProblem
from repro.experiments.instances import InstanceSpec, build_inputs
from repro.kernels import KERNELS_ENV, clear_kernel_caches
from repro.netmodel.graph import MECNetwork

#: Figure 3's residual-capacity fractions (its x-axis).
RESIDUAL_SCALES = (1.0, 0.5, 0.25, 0.125)
THIN_SCALES = (1.0, 0.25)

#: Timed passes per engine per data point; the minimum is reported.
DEFAULT_REPS = 5

FIG_NODES = 100
FIG_CLOUDLETS = 10  # 10% of APs
CHAIN_LENGTHS = (3, 4, 6, 8, 10)  # cycles the paper's 3..10 range


def _draw_workload(residual_scale: float, trials: int, seed0: int = 41000):
    """Figure-3-shaped construction inputs: one topology per trial, chain
    lengths cycling the paper's range.  Returns draw-free build closures'
    raw pieces so passes re-run only construction."""
    inputs = []
    for t in range(trials):
        spec = InstanceSpec(
            family="waxman",
            num_nodes=FIG_NODES,
            cloudlet_count=FIG_CLOUDLETS,
            chain_length=CHAIN_LENGTHS[t % len(CHAIN_LENGTHS)],
            radius=1,
            residual_scale=residual_scale,
            seed=seed0 + t,
        )
        inputs.append(build_inputs(spec))
    return inputs


def _fresh_networks(inputs):
    """Re-wrap each input's topology in a new MECNetwork (fresh graph
    object), so every per-graph cache -- kernel and legacy -- starts cold."""
    nets = []
    for inp in inputs:
        capacities = {v: inp.network.capacity(v) for v in inp.network.cloudlets}
        nets.append(MECNetwork(inp.network.graph, capacities))
    return nets


def _build_all(inputs, nets) -> int:
    total_items = 0
    for inp, net in zip(inputs, nets):
        problem = AugmentationProblem.build(
            net,
            inp.request,
            inp.primary_placement,
            radius=inp.radius,
            residuals=inp.residuals,
            item_config=inp.item_config,
        )
        total_items += problem.num_items
    return total_items


def _assert_engines_identical(inputs) -> None:
    def signatures():
        clear_kernel_caches()
        nets = _fresh_networks(inputs)
        return [
            [
                (it.position, it.k, it.demand, it.gain, it.cost, it.bins)
                for it in AugmentationProblem.build(
                    net, inp.request, inp.primary_placement, radius=inp.radius,
                    residuals=inp.residuals, item_config=inp.item_config,
                ).items
            ]
            for inp, net in zip(inputs, nets)
        ]

    os.environ[KERNELS_ENV] = "1"
    with_kernels = signatures()
    os.environ[KERNELS_ENV] = "0"
    without = signatures()
    os.environ[KERNELS_ENV] = "1"
    assert with_kernels == without, "kernel and scalar construction diverged"


def _time_pass(inputs) -> tuple[float, int]:
    nets = _fresh_networks(inputs)  # untimed: topology wrapping, not construction
    clear_kernel_caches()
    start = time.perf_counter()
    items = _build_all(inputs, nets)
    return time.perf_counter() - start, items


def _min_of_reps(inputs, enabled: bool, reps: int) -> tuple[float, int]:
    os.environ[KERNELS_ENV] = "1" if enabled else "0"
    best, items = float("inf"), 0
    for _ in range(reps):
        elapsed, items = _time_pass(inputs)
        best = min(best, elapsed)
    os.environ[KERNELS_ENV] = "1"
    return best, items


def run_sweep(scales, trials: int, reps: int = DEFAULT_REPS):
    """Rows of ``(scale, scalar_s, kernel_s, speedup, builds, items)``."""
    rows = []
    for scale in scales:
        inputs = _draw_workload(scale, trials)
        _assert_engines_identical(inputs)
        # warm both engines, then alternate measured passes
        _min_of_reps(inputs, True, 1)
        _min_of_reps(inputs, False, 1)
        t_scalar, _ = _min_of_reps(inputs, False, reps)
        t_kernel, items = _min_of_reps(inputs, True, reps)
        t_scalar = min(t_scalar, _min_of_reps(inputs, False, reps)[0])
        t_kernel = min(t_kernel, _min_of_reps(inputs, True, reps)[0])
        rows.append((scale, t_scalar, t_kernel, t_scalar / t_kernel,
                     len(inputs), items))
    return rows


def render_table(rows, trials: int, reps: int) -> str:
    lines = [
        "Array kernels vs scalar construction -- Figure 3 workload shape",
        f"(|V|={FIG_NODES}, {FIG_CLOUDLETS} cloudlets, chains "
        f"{min(CHAIN_LENGTHS)}..{max(CHAIN_LENGTHS)}, l=1; {trials} builds/"
        f"point, min over {2 * reps} alternating cache-cold passes; engines "
        "verified bit-identical per instance before timing)",
        "",
        f"{'residual':>8}  {'scalar':>10}  {'kernels':>10}  {'speedup':>7}  {'items':>6}",
    ]
    for scale, t_scalar, t_kernel, speedup, _, items in rows:
        lines.append(
            f"{scale:>8.3f}  {t_scalar * 1000:>8.1f}ms  {t_kernel * 1000:>8.1f}ms"
            f"  {speedup:>6.2f}x  {items:>6}"
        )
    return "\n".join(lines)


def emit_records(results_dir, rows, trials: int, reps: int) -> None:
    emit(results_dir, "kernels", render_table(rows, trials, reps))
    emit_json(
        results_dir,
        "BENCH_kernels",
        config={
            "workload": "fig3-construction",
            "num_nodes": FIG_NODES,
            "cloudlet_count": FIG_CLOUDLETS,
            "chain_lengths": list(CHAIN_LENGTHS),
            "radius": 1,
            "trials_per_point": trials,
            "reps_per_engine": 2 * reps,
            "timing": "min-of-reps, cache-cold passes, engines alternated",
        },
        points=[
            {
                "residual_scale": scale,
                "scalar_seconds": t_scalar,
                "kernel_seconds": t_kernel,
                "speedup": speedup,
                "builds": builds,
                "items": items,
            }
            for scale, t_scalar, t_kernel, speedup, builds, items in rows
        ],
        extra={
            "note": (
                f"measured on cpu_count={os.cpu_count()}; construction is "
                "single-threaded, so speedup is engine-vs-engine on one core"
            )
        },
    )


def bench_kernel_construction(benchmark, results_dir):
    scales = RESIDUAL_SCALES if full_grid() else THIN_SCALES
    trials = min(trials_per_point(), 10)

    rows = benchmark.pedantic(
        lambda: run_sweep(scales, trials), rounds=1, iterations=1
    )
    emit_records(results_dir, rows, trials, DEFAULT_REPS)

    # Every row must clearly beat the scalar path, and the item-heavy rows
    # carry the headline >=2x (recorded in BENCH_kernels.json); the row
    # floor leaves noise headroom.
    for row in rows:
        assert row[3] > 1.2, row
    assert max(row[3] for row in rows) >= 2.0, rows


def main(argv):
    unknown = [a for a in argv if a != "--quick"]
    if unknown:
        print(f"usage: bench_kernels.py [--quick] (got {unknown})")
        return 2
    quick = "--quick" in argv
    scales = (1.0,) if quick else RESIDUAL_SCALES
    trials = 4 if quick else min(trials_per_point(), 10)
    reps = 2 if quick else DEFAULT_REPS
    rows = run_sweep(scales, trials, reps=reps)
    text = render_table(rows, trials, reps)
    if quick:
        print(text)
        # smoke: correctness (asserted in run_sweep) plus a sane speedup
        # on the item-heavy scale (noise headroom below the recorded >=2x)
        assert all(row[3] > 1.2 for row in rows), rows
    else:
        RESULTS_DIR.mkdir(exist_ok=True)
        emit_records(RESULTS_DIR, rows, trials, reps)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
