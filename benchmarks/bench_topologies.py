"""Ablation: topology-family sensitivity.

The paper evaluates on GT-ITM (Waxman) topologies only.  This bench re-runs
the default comparison on Erdos-Renyi and grid networks of the same size to
check the algorithms' relative ordering is not a Waxman artifact: the exact
ILP must dominate and the heuristic track it on every family.
"""

from __future__ import annotations

import networkx as nx

from benchmarks.conftest import trials_per_point, emit, emit_json
from repro.algorithms.heuristic import MatchingHeuristic
from repro.algorithms.ilp_exact import ILPAlgorithm
from repro.experiments.runner import run_trial
from repro.experiments.settings import DEFAULT_SETTINGS
from repro.experiments.workload import make_trial
from repro.netmodel.graph import MECNetwork
from repro.topology.families import erdos_renyi_topology, grid_topology
from repro.topology.gtitm import generate_gtitm_topology
from repro.topology.placement import assign_cloudlets
from repro.topology.transit_stub import (
    generate_transit_stub_topology,
    transit_stub_cloudlets,
)
from repro.util.rng import as_rng, spawn_rng
from repro.util.tables import format_table


def _flat_network(make_graph, rng) -> MECNetwork:
    graph = make_graph(rng)
    return MECNetwork(graph, assign_cloudlets(graph, rng=rng))


def _transit_stub_network(rng) -> MECNetwork:
    graph = generate_transit_stub_topology(rng=rng)
    return MECNetwork(graph, transit_stub_cloudlets(graph, rng=rng))


FAMILIES = {
    "waxman": lambda rng: _flat_network(
        lambda r: generate_gtitm_topology(100, rng=r), rng
    ),
    "erdos-renyi": lambda rng: _flat_network(
        lambda r: erdos_renyi_topology(100, 0.05, rng=r), rng
    ),
    "grid": lambda rng: _flat_network(lambda _r: grid_topology(10, 10), rng),
    "transit-stub": _transit_stub_network,
}


def _run_family(name: str, trials: int, seed: int):
    make_network = FAMILIES[name]
    algorithms = [ILPAlgorithm(), MatchingHeuristic()]
    gen = as_rng(seed)
    totals = {a.name: 0.0 for a in algorithms}
    for child in spawn_rng(gen, trials):
        network = make_network(child)
        instance = make_trial(DEFAULT_SETTINGS, rng=child, network=network)
        for algorithm in algorithms:
            result = algorithm.solve(instance.problem, rng=child)
            totals[algorithm.name] += result.reliability
    return {name_: total / trials for name_, total in totals.items()}


def bench_topology_families(benchmark, results_dir):
    trials = max(3, trials_per_point() // 2)

    def sweep():
        return {name: _run_family(name, trials, seed=31) for name in FAMILIES}

    per_family = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [family, rels["ILP"], rels["Heuristic"], rels["ILP"] - rels["Heuristic"]]
        for family, rels in per_family.items()
    ]
    emit(
        results_dir,
        "topologies",
        format_table(
            ["topology", "rel(ILP)", "rel(Heuristic)", "gap"],
            rows,
            title=f"Topology sensitivity ({trials} trials/family)",
        ),
    )
    emit_json(
        results_dir,
        "BENCH_topologies",
        config={
            "workload": "default comparison across topology families",
            "families": list(FAMILIES),
            "trials_per_family": trials,
            "seed": 31,
        },
        points=[
            {
                "family": family,
                "reliability_ilp": rels["ILP"],
                "reliability_heuristic": rels["Heuristic"],
                "gap": rels["ILP"] - rels["Heuristic"],
            }
            for family, rels in per_family.items()
        ],
    )

    for family, rels in per_family.items():
        assert rels["Heuristic"] <= rels["ILP"] + 0.03, family
