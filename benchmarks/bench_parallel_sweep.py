"""Parallel sweep engine: wall-clock scaling of the Figure 1 sweep by jobs.

Measures the end-to-end Figure 1 SFC-length sweep at 1, 2, 4 and 8 worker
processes.  Before any timing, the run asserts bit-identity: every jobs
value must reproduce the serial sweep's aggregates field-for-field (the
engine's core contract -- see ``docs/parallel.md``); a benchmark that
compared unequal answers would be meaningless.

Timing is min-of-reps per jobs value.  The pool is warmed once per jobs
value before measurement so worker start-up (paid once per process, then
amortised across the sweep by the shared-executor cache) does not pollute
the steady-state numbers.

Speedup is relative to jobs=1 on the same machine.  The recorded JSON
carries ``machine.cpu_count``; on a single-core container every jobs value
necessarily times out to ~1x (plus IPC overhead), so interpret recorded
speedups against the core count they were measured on.

Run standalone for a quick smoke check (used by CI)::

    python benchmarks/bench_parallel_sweep.py --quick
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: bootstrap repo + src onto the path
    _root = Path(__file__).resolve().parent.parent
    for entry in (str(_root), str(_root / "src")):
        if entry not in sys.path:
            sys.path.insert(0, entry)

from benchmarks.conftest import (
    RESULTS_DIR,
    emit,
    emit_json,
    machine_metadata,
    trials_per_point,
)
from repro.experiments.figures import run_figure1
from repro.experiments.settings import DEFAULT_SETTINGS
from repro.parallel import shutdown_executors

THIN_GRID = (2, 6, 10, 14, 20)

JOBS_GRID = (1, 2, 4, 8)

#: Timed sweeps per jobs value; the minimum is reported.
DEFAULT_REPS = 3


def _sweep(lengths, trials: int, jobs: int):
    return run_figure1(
        DEFAULT_SETTINGS,
        sfc_lengths=lengths,
        trials=trials,
        rng=1,
        jobs=jobs,
    )


def _series_equal(a, b) -> bool:
    if a.x_values != b.x_values:
        return False
    for point_a, point_b in zip(a.points, b.points):
        if set(point_a) != set(point_b):
            return False
        for name in point_a:
            stats_a, stats_b = point_a[name], point_b[name]
            # compare everything except measured runtimes, which are real
            # wall-clock here (the determinism tests cover runtime equality
            # under the fake clock)
            fields = (
                "trials",
                "reliability_sum",
                "usage_mean_sum",
                "usage_min_sum",
                "usage_max_sum",
                "backups_sum",
                "expectation_met_count",
                "violation_trials",
            )
            if any(
                getattr(stats_a, field) != getattr(stats_b, field)
                for field in fields
            ):
                return False
    return True


def run_scaling(lengths, trials: int, jobs_grid, reps: int = DEFAULT_REPS):
    """Measure the sweep at each jobs value; returns per-jobs point records.

    Each record: ``{"jobs", "seconds" (min of reps), "reps_seconds" (all),
    "speedup" (vs jobs=1)}``.
    """
    reference = _sweep(lengths, trials, jobs=1)
    points = []
    for jobs in jobs_grid:
        result = _sweep(lengths, trials, jobs=jobs)  # warm pool + verify
        assert _series_equal(reference, result), (
            f"jobs={jobs} changed the sweep's numbers -- determinism bug"
        )
        reps_seconds = []
        for _ in range(reps):
            start = time.perf_counter()
            _sweep(lengths, trials, jobs=jobs)
            reps_seconds.append(time.perf_counter() - start)
        points.append(
            {
                "jobs": jobs,
                "seconds": min(reps_seconds),
                "reps_seconds": reps_seconds,
            }
        )
    baseline = points[0]["seconds"]
    for record in points:
        record["speedup"] = baseline / record["seconds"]
    shutdown_executors()
    return points


def render_table(points, lengths, trials: int, reps: int) -> str:
    cpus = machine_metadata()["cpu_count"]
    lines = [
        "Parallel sweep engine -- Figure 1 SFC-length sweep, wall-clock by jobs",
        f"(grid {tuple(lengths)}, {trials} trials/point, min over {reps} sweeps; "
        f"measured on {cpus} CPU core(s))",
        "aggregates verified identical to the serial sweep before timing",
        "",
        f"{'jobs':>4}  {'seconds':>9}  {'speedup':>7}",
    ]
    for record in points:
        lines.append(
            f"{record['jobs']:>4}  {record['seconds']:>8.2f}s"
            f"  {record['speedup']:>6.2f}x"
        )
    if cpus is not None and cpus < 2:
        lines.append("")
        lines.append(
            "note: single-core machine -- workers serialise on one CPU, so "
            "speedups ~1x here; the engine's scaling shows on multicore hosts."
        )
    return "\n".join(lines)


def _provenance_note() -> str:
    """Top-level JSON note: speedups only mean anything against the core
    count they were measured on (``machine.cpu_count`` in the record)."""
    cpus = machine_metadata()["cpu_count"]
    if cpus is not None and cpus < 2:
        return (
            f"measured on cpu_count={cpus}: workers serialise on one CPU, so "
            "speedups are necessarily ~1x (plus IPC overhead); the engine's "
            "scaling shows on multicore hosts"
        )
    return f"measured on cpu_count={cpus}; speedup is relative to jobs=1"


def bench_parallel_sweep(benchmark, results_dir):
    lengths = (2, 10, 20)
    trials = min(trials_per_point(), 6)
    jobs_grid = (1, 2)
    points = benchmark.pedantic(
        lambda: run_scaling(lengths, trials, jobs_grid, reps=1),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "parallel_sweep", render_table(points, lengths, trials, 1))
    emit_json(
        results_dir,
        "BENCH_parallel_sweep",
        config={
            "grid": list(lengths),
            "trials": trials,
            "seed": 1,
            "reps": 1,
            "jobs_grid": list(jobs_grid),
        },
        points=points,
        extra={"note": _provenance_note()},
    )
    # the parallel path must not collapse: even on one core, pool overhead
    # stays bounded (pool start-up is excluded by the warm-up sweep)
    assert points[-1]["speedup"] > 0.25, points


def main(argv):
    unknown = [a for a in argv if a != "--quick"]
    if unknown:
        print(f"usage: bench_parallel_sweep.py [--quick] (got {unknown})")
        return 2
    quick = "--quick" in argv
    lengths = (2, 10) if quick else THIN_GRID
    trials = 4 if quick else trials_per_point()
    jobs_grid = (1, 2) if quick else JOBS_GRID
    reps = 1 if quick else DEFAULT_REPS
    points = run_scaling(lengths, trials, jobs_grid, reps=reps)
    text = render_table(points, lengths, trials, reps)
    if quick:
        print(text)
    else:
        RESULTS_DIR.mkdir(exist_ok=True)
        emit(RESULTS_DIR, "parallel_sweep", text)
        emit_json(
            RESULTS_DIR,
            "BENCH_parallel_sweep",
            config={
                "grid": list(lengths),
                "trials": trials,
                "seed": 1,
                "reps": reps,
                "jobs_grid": list(jobs_grid),
            },
            points=points,
            extra={"note": _provenance_note()},
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
