"""Parallel sweep engine: payload accounting, dispatch cost, and scaling.

Three sections, all recorded in ``BENCH_parallel_sweep.json``:

1. **Identity.**  Before any timing, the Figure 1 sweep is verified
   bit-identical across every measured jobs value under *both*
   ``REPRO_SHM`` settings -- a benchmark that compared unequal answers
   would be meaningless.
2. **Payload accounting** (the zero-pickle layer's win, measurable even
   on one core).  At Figure-3 scale (1,000 trials -> 63 chunks) the
   classic path pickles ~2 KB of settings/specs/seeds per
   :class:`~repro.parallel.tasks.ChunkTask`; the shm path publishes that
   state once and ships ~60-byte :class:`~repro.parallel.shm.ShmTask`
   handles.  Both payload columns are measured as the exact pickles the
   pool would write, alongside the time to build + serialise the whole
   task list (dispatch) and the one-off segment publish (setup).  The run
   **asserts** the per-task reduction floor of
   :data:`PAYLOAD_REDUCTION_FLOOR` (acceptance: >= 20x).
3. **Wall-clock scaling** by jobs, min-of-reps, under both ``REPRO_SHM``
   settings.  Speedup rows are *gated on the machine's core count*: on a
   single-core container workers serialise on one CPU, so rows are
   annotated ``serialization-overhead-only; wall-clock speedup not
   demonstrable on this machine`` instead of being passed off as real
   scaling; the gating is recorded in the JSON (``cpu_gated``).

The run ends by asserting zero leaked shared-memory segments (both the
owner registry and ``/dev/shm`` are checked).

Run standalone for a quick smoke check (used by CI)::

    python benchmarks/bench_parallel_sweep.py --quick
"""

from __future__ import annotations

import glob
import os
import pickle
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: bootstrap repo + src onto the path
    _root = Path(__file__).resolve().parent.parent
    for entry in (str(_root), str(_root / "src")):
        if entry not in sys.path:
            sys.path.insert(0, entry)

import numpy as np

from benchmarks.conftest import (
    RESULTS_DIR,
    emit,
    emit_json,
    machine_metadata,
    trials_per_point,
)
from repro.algorithms.heuristic import MatchingHeuristic
from repro.algorithms.ilp_exact import ILPAlgorithm
from repro.algorithms.randomized import RandomizedRounding
from repro.experiments.figures import run_figure1
from repro.experiments.settings import DEFAULT_SETTINGS
from repro.parallel import shm, shutdown_executors
from repro.parallel.executor import (
    chunk_indices,
    default_chunk_size,
    measure_payload,
    shared_executor,
)
from repro.parallel.tasks import ChunkTask, specs_for
from repro.util.rng import spawn_seed_sequences

THIN_GRID = (2, 6, 10, 14, 20)

JOBS_GRID = (1, 2, 4, 8)

#: Timed sweeps per jobs value; the minimum is reported.
DEFAULT_REPS = 3

#: Acceptance floor: shm must shrink the mean per-task payload by at
#: least this factor at Figure-3 scale.
PAYLOAD_REDUCTION_FLOOR = 20.0

#: The honest-provenance annotation for speedups measured on one core.
SINGLE_CORE_NOTE = (
    "serialization-overhead-only; wall-clock speedup not demonstrable "
    "on this machine"
)


def _cpu_gated() -> bool:
    cpus = machine_metadata()["cpu_count"]
    return cpus is not None and int(cpus) < 2


def _sweep(lengths, trials: int, jobs: int):
    return run_figure1(
        DEFAULT_SETTINGS,
        sfc_lengths=lengths,
        trials=trials,
        rng=1,
        jobs=jobs,
    )


def _series_equal(a, b) -> bool:
    if a.x_values != b.x_values:
        return False
    for point_a, point_b in zip(a.points, b.points):
        if set(point_a) != set(point_b):
            return False
        for name in point_a:
            stats_a, stats_b = point_a[name], point_b[name]
            # compare everything except measured runtimes, which are real
            # wall-clock here (the determinism tests cover runtime equality
            # under the fake clock)
            fields = (
                "trials",
                "reliability_sum",
                "usage_mean_sum",
                "usage_min_sum",
                "usage_max_sum",
                "backups_sum",
                "expectation_met_count",
                "violation_trials",
            )
            if any(
                getattr(stats_a, field) != getattr(stats_b, field)
                for field in fields
            ):
                return False
    return True


def measure_payloads(trials: int = 1000, seed: int = 1):
    """Per-task payload bytes + dispatch/setup seconds, classic vs shm.

    Construct-only (no trials are executed): this measures exactly what
    the pool serialises, at Figure-3 scale, independent of solve time.
    """
    algorithms = [ILPAlgorithm(), RandomizedRounding(), MatchingHeuristic()]
    specs = specs_for(algorithms)
    assert specs is not None
    gen = np.random.default_rng(seed)
    seeds = spawn_seed_sequences(gen, trials)
    size = default_chunk_size(trials)
    bounds = chunk_indices(trials, size)

    # classic: one fully pickled ChunkTask per chunk
    started = time.perf_counter()
    chunks = [
        ChunkTask(
            settings=DEFAULT_SETTINGS,
            algorithms=specs,
            seeds=tuple(seeds[start:stop]),
            index=index,
        )
        for index, (start, stop) in enumerate(bounds)
    ]
    classic = measure_payload(chunks)
    classic_seconds = time.perf_counter() - started

    # shm: publish once (setup), then ~60-byte handles (dispatch)
    publish_started = time.perf_counter()
    state = shm.publish_sweep(DEFAULT_SETTINGS, specs, seeds, chunk_size=size)
    publish_seconds = time.perf_counter() - publish_started
    try:
        segment_bytes = (
            state.manifest.payload_nbytes + len(pickle.dumps(state.manifest))
        )
        started = time.perf_counter()
        tasks = [shm.ShmTask(state.name, index) for index in range(len(bounds))]
        compact = measure_payload(tasks)
        compact_seconds = time.perf_counter() - started
    finally:
        state.unlink()

    reduction = classic.mean_bytes / compact.mean_bytes
    return {
        "trials": trials,
        "chunks": len(bounds),
        "chunk_size": size,
        "algorithms": [a.name for a in algorithms],
        "classic": {
            "total_bytes": classic.total_bytes,
            "mean_bytes_per_task": classic.mean_bytes,
            "max_bytes_per_task": classic.max_bytes,
            "dispatch_seconds": classic_seconds,
        },
        "shm": {
            "total_bytes": compact.total_bytes,
            "mean_bytes_per_task": compact.mean_bytes,
            "max_bytes_per_task": compact.max_bytes,
            "dispatch_seconds": compact_seconds,
            "publish_seconds": publish_seconds,
            "segment_bytes": segment_bytes,
        },
        "reduction": reduction,
    }


def verify_identity(lengths, trials: int, jobs_grid) -> None:
    """Assert the sweep's numbers are invariant to jobs x REPRO_SHM."""
    previous = os.environ.get(shm.SHM_ENV)
    try:
        os.environ[shm.SHM_ENV] = "0"
        reference = _sweep(lengths, trials, jobs=1)
        for flag in ("0", "1"):
            os.environ[shm.SHM_ENV] = flag
            for jobs in jobs_grid:
                result = _sweep(lengths, trials, jobs=jobs)
                assert _series_equal(reference, result), (
                    f"jobs={jobs} REPRO_SHM={flag} changed the sweep's "
                    "numbers -- determinism bug"
                )
    finally:
        if previous is None:
            os.environ.pop(shm.SHM_ENV, None)
        else:
            os.environ[shm.SHM_ENV] = previous


def run_scaling(lengths, trials: int, jobs_grid, reps: int = DEFAULT_REPS):
    """Time the sweep per (jobs, REPRO_SHM); identity is verified first.

    Each record: ``{"jobs", "shm", "seconds" (min of reps),
    "reps_seconds", "task_bytes" (per-task max from the executor's
    payload accounting), "speedup" (vs jobs=1 under the same shm flag),
    "speedup_provenance"}``.
    """
    verify_identity(lengths, trials, jobs_grid)
    previous = os.environ.get(shm.SHM_ENV)
    points = []
    try:
        for flag in ("0", "1"):
            os.environ[shm.SHM_ENV] = flag
            for jobs in jobs_grid:
                _sweep(lengths, trials, jobs=jobs)  # warm the pool
                executor = shared_executor(jobs)
                executor.last_payload = None
                reps_seconds = []
                for _ in range(reps):
                    start = time.perf_counter()
                    _sweep(lengths, trials, jobs=jobs)
                    reps_seconds.append(time.perf_counter() - start)
                payload = executor.last_payload
                points.append(
                    {
                        "jobs": jobs,
                        "shm": flag == "1",
                        "seconds": min(reps_seconds),
                        "reps_seconds": reps_seconds,
                        "task_bytes": payload.max_bytes if payload else None,
                    }
                )
    finally:
        if previous is None:
            os.environ.pop(shm.SHM_ENV, None)
        else:
            os.environ[shm.SHM_ENV] = previous
    gated = _cpu_gated()
    for record in points:
        baseline = next(
            p["seconds"]
            for p in points
            if p["jobs"] == jobs_grid[0] and p["shm"] == record["shm"]
        )
        record["speedup"] = baseline / record["seconds"]
        record["speedup_provenance"] = (
            SINGLE_CORE_NOTE if gated else "wall-clock vs jobs=1, same shm flag"
        )
    shutdown_executors()
    return points


def assert_no_leaks() -> None:
    assert shm.active_segments() == [], shm.active_segments()
    leftovers = glob.glob(f"/dev/shm/{shm.SEGMENT_PREFIX}*")
    assert leftovers == [], leftovers


def render_table(points, payload, lengths, trials: int, reps: int) -> str:
    cpus = machine_metadata()["cpu_count"]
    gated = _cpu_gated()
    lines = [
        "Parallel sweep engine -- payloads, dispatch cost, wall-clock by jobs",
        f"(Figure 1 grid {tuple(lengths)}, {trials} trials/point, min over "
        f"{reps} sweeps; measured on {cpus} CPU core(s))",
        "aggregates verified identical across jobs x REPRO_SHM before timing",
        "",
        f"per-task payload at Figure-3 scale ({payload['trials']} trials, "
        f"{payload['chunks']} chunks):",
        f"{'path':>8}  {'bytes/task':>10}  {'total':>9}  {'dispatch':>9}  {'setup':>8}",
        f"{'classic':>8}  {payload['classic']['mean_bytes_per_task']:>10.0f}"
        f"  {payload['classic']['total_bytes']:>9}"
        f"  {payload['classic']['dispatch_seconds'] * 1e3:>7.1f}ms"
        f"  {'-':>8}",
        f"{'shm':>8}  {payload['shm']['mean_bytes_per_task']:>10.0f}"
        f"  {payload['shm']['total_bytes']:>9}"
        f"  {payload['shm']['dispatch_seconds'] * 1e3:>7.1f}ms"
        f"  {payload['shm']['publish_seconds'] * 1e3:>6.1f}ms",
        f"reduction: {payload['reduction']:.1f}x per task "
        f"(floor {PAYLOAD_REDUCTION_FLOOR:.0f}x); one "
        f"{payload['shm']['segment_bytes']}-byte shared segment replaces "
        "the per-task state",
        "",
        f"{'jobs':>4}  {'shm':>3}  {'seconds':>9}  {'B/task':>6}  {'speedup':>7}",
    ]
    for record in points:
        speedup = (
            f"{record['speedup']:>6.2f}x*" if gated else f"{record['speedup']:>6.2f}x "
        )
        task_bytes = record["task_bytes"]
        lines.append(
            f"{record['jobs']:>4}  {'on' if record['shm'] else 'off':>3}"
            f"  {record['seconds']:>8.2f}s"
            f"  {task_bytes if task_bytes is not None else '-':>6}"
            f"  {speedup}"
        )
    if gated:
        lines.append("")
        lines.append(f"* {SINGLE_CORE_NOTE}")
    return "\n".join(lines)


def _provenance_note() -> str:
    """Top-level JSON note: speedups only mean anything against the core
    count they were measured on (``machine.cpu_count`` in the record)."""
    cpus = machine_metadata()["cpu_count"]
    if _cpu_gated():
        return (
            f"measured on cpu_count={cpus}: speedup rows are "
            f"{SINGLE_CORE_NOTE}; payload/dispatch columns are the "
            "machine-independent result"
        )
    return f"measured on cpu_count={cpus}; speedup is relative to jobs=1"


def _record(results_dir, points, payload, lengths, trials, reps, jobs_grid):
    emit(results_dir, "parallel_sweep", render_table(points, payload, lengths, trials, reps))
    emit_json(
        results_dir,
        "BENCH_parallel_sweep",
        config={
            "grid": list(lengths),
            "trials": trials,
            "seed": 1,
            "reps": reps,
            "jobs_grid": list(jobs_grid),
            "payload_reduction_floor": PAYLOAD_REDUCTION_FLOOR,
        },
        points=points,
        extra={
            "note": _provenance_note(),
            "cpu_gated": _cpu_gated(),
            "payload": payload,
            "leaked_segments": 0,  # asserted before recording
        },
    )


def bench_parallel_sweep(benchmark, results_dir):
    lengths = (2, 10, 20)
    trials = min(trials_per_point(), 6)
    jobs_grid = (1, 2)
    points = benchmark.pedantic(
        lambda: run_scaling(lengths, trials, jobs_grid, reps=1),
        rounds=1,
        iterations=1,
    )
    payload = measure_payloads()
    assert payload["reduction"] >= PAYLOAD_REDUCTION_FLOOR, payload
    assert_no_leaks()
    _record(results_dir, points, payload, lengths, trials, 1, jobs_grid)
    # the parallel path must not collapse: even on one core, pool overhead
    # stays bounded (pool start-up is excluded by the warm-up sweep)
    assert points[-1]["speedup"] > 0.25, points


def main(argv):
    unknown = [a for a in argv if a != "--quick"]
    if unknown:
        print(f"usage: bench_parallel_sweep.py [--quick] (got {unknown})")
        return 2
    quick = "--quick" in argv
    lengths = (2, 10) if quick else THIN_GRID
    trials = 4 if quick else trials_per_point()
    jobs_grid = (1, 2) if quick else JOBS_GRID
    reps = 1 if quick else DEFAULT_REPS
    points = run_scaling(lengths, trials, jobs_grid, reps=reps)
    payload = measure_payloads()
    assert payload["reduction"] >= PAYLOAD_REDUCTION_FLOOR, payload
    assert_no_leaks()
    if quick:
        print(render_table(points, payload, lengths, trials, reps))
        print(
            f"\npayload reduction {payload['reduction']:.1f}x >= "
            f"{PAYLOAD_REDUCTION_FLOOR:.0f}x floor; zero leaked segments"
        )
    else:
        RESULTS_DIR.mkdir(exist_ok=True)
        _record(RESULTS_DIR, points, payload, lengths, trials, reps, jobs_grid)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
