"""Incremental vs rebuild round engine on the Figure 1 SFC-length workload.

Algorithm 2 rebuilds ``G_l`` from the ledger in every augmentation round;
the incremental engine (:mod:`repro.matching.incremental`) keeps the edge
universe static, maintains residuals by deltas, and reuses one padded
matrix buffer.  This bench measures the end-to-end heuristic speedup on
the paper's Figure 1 chain-length sweep and -- before any timing -- checks
the two engines produce *identical* placements, round counts, and paper
costs on every workload instance, so the numbers compare equal work.

Timing is min-of-reps with the two engines measured alternately: the
minimum over several full passes is robust to scheduler noise, and
alternation keeps cache-warmth symmetric.

Run standalone for a quick smoke check (used by CI)::

    python benchmarks/bench_incremental_matching.py --quick
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: bootstrap repo + src onto the path
    _root = Path(__file__).resolve().parent.parent
    for entry in (str(_root), str(_root / "src")):
        if entry not in sys.path:
            sys.path.insert(0, entry)

from benchmarks.conftest import RESULTS_DIR, emit, full_grid, trials_per_point
from repro.algorithms.heuristic import MatchingHeuristic
from repro.experiments.figures import FIG1_SFC_LENGTHS
from repro.experiments.settings import DEFAULT_SETTINGS
from repro.experiments.workload import make_trial

THIN_GRID = (2, 6, 10, 14, 20)

#: Timed passes per engine per data point; the minimum is reported.
DEFAULT_REPS = 5


def _build_problems(length: int, trials: int):
    settings = DEFAULT_SETTINGS.vary(sfc_length=length)
    return [make_trial(settings, rng=1000 + t).problem for t in range(trials)]


def _assert_engines_identical(problems, length: int) -> None:
    incremental = MatchingHeuristic(incremental=True, record_trace=True)
    rebuild = MatchingHeuristic(incremental=False, record_trace=True)
    for index, problem in enumerate(problems):
        inc, reb = incremental.solve(problem), rebuild.solve(problem)
        context = (length, index)
        assert inc.solution.placements == reb.solution.placements, context
        assert inc.meta.get("rounds") == reb.meta.get("rounds"), context
        assert inc.meta.get("paper_cost_total") == reb.meta.get(
            "paper_cost_total"
        ), context
        assert inc.meta.get("round_trace") == reb.meta.get("round_trace"), context


def _min_of_reps(algorithm, problems, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        for problem in problems:
            algorithm.solve(problem)
        best = min(best, time.perf_counter() - start)
    return best


def run_sweep(lengths, trials: int, reps: int = DEFAULT_REPS):
    """Return rows of ``(length, rebuild_s, incremental_s, speedup)``."""
    incremental = MatchingHeuristic(incremental=True)
    rebuild = MatchingHeuristic(incremental=False)
    rows = []
    for length in lengths:
        problems = _build_problems(length, trials)
        _assert_engines_identical(problems, length)
        # warm both engines, then alternate measured passes
        _min_of_reps(incremental, problems, 1)
        _min_of_reps(rebuild, problems, 1)
        t_reb = _min_of_reps(rebuild, problems, reps)
        t_inc = _min_of_reps(incremental, problems, reps)
        t_reb = min(t_reb, _min_of_reps(rebuild, problems, reps))
        t_inc = min(t_inc, _min_of_reps(incremental, problems, reps))
        rows.append((length, t_reb, t_inc, t_reb / t_inc))
    return rows


def render_table(rows, trials: int, reps: int) -> str:
    lines = [
        "Incremental round engine vs full rebuild -- Figure 1 SFC-length workload",
        f"({trials} trials/point, min over {2 * reps} alternating passes; "
        "engines verified bit-identical per instance before timing)",
        "",
        f"{'length':>6}  {'rebuild':>10}  {'incremental':>11}  {'speedup':>7}",
    ]
    for length, t_reb, t_inc, speedup in rows:
        lines.append(
            f"{length:>6}  {t_reb * 1000:>8.1f}ms  {t_inc * 1000:>9.1f}ms"
            f"  {speedup:>6.2f}x"
        )
    return "\n".join(lines)


def bench_incremental_matching(benchmark, results_dir):
    lengths = FIG1_SFC_LENGTHS if full_grid() else THIN_GRID
    trials = min(trials_per_point(), 12)

    rows = benchmark.pedantic(
        lambda: run_sweep(lengths, trials), rounds=1, iterations=1
    )
    emit(results_dir, "incremental_matching", render_table(rows, trials, DEFAULT_REPS))

    # The engine must never lose to the rebuild it replaces at the largest
    # chain length (the hot path it was built for).  The headline >=1.5x is
    # recorded in benchmarks/results/; the assertion leaves noise headroom.
    assert rows[-1][3] > 1.0, rows[-1]


def main(argv):
    unknown = [a for a in argv if a != "--quick"]
    if unknown:
        print(f"usage: bench_incremental_matching.py [--quick] (got {unknown})")
        return 2
    quick = "--quick" in argv
    lengths = (2, 20) if quick else THIN_GRID
    trials = 4 if quick else min(trials_per_point(), 12)
    reps = 2 if quick else DEFAULT_REPS
    rows = run_sweep(lengths, trials, reps=reps)
    text = render_table(rows, trials, reps)
    if quick:
        print(text)
    else:
        RESULTS_DIR.mkdir(exist_ok=True)
        emit(RESULTS_DIR, "incremental_matching", text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
