"""The million-request streaming-admission latency benchmark.

Drives :func:`repro.service.replay_trace` over a synthetic Poisson +
flash-crowd arrival trace on a large degree-controlled topology (the
Waxman edge probability does not shrink with ``n``, so the generator gets
``alpha`` scaled down to keep GT-ITM-like mean degree at 5k nodes -- dense
graphs make every radius-1 domain overlap and no wave ever coalesces).

Three measurements, recorded to ``BENCH_admission_service.json``
(``repro-bench/1`` schema, machine provenance included):

* **identity** -- batched and sequential admission replay a shared trace
  prefix and must produce identical records and byte-identical per-node
  ledger state (the differential contract, re-checked at bench scale);
* **amortization** -- a capped flash-crowd replica replayed in both modes
  on fresh ledgers: wall-clock speedup of the batched union solves over
  per-request solves (acceptance floor: >= 1.5x).  Single-shot replay
  timing is allocator/GC-noisy, so each mode replays the same
  pre-materialized trace ``AMORTIZATION_REPEATS`` times with GC paused
  and the per-mode minimum is the estimate (all repeats are recorded);
* **latency** -- the main trace (1M requests full-scale, 20k quick)
  replayed batched, recording p50/p90/p99 admission latency per phase,
  throughput, shed rate, and the refold-audit count.

Run standalone::

    python benchmarks/bench_admission_service.py [--quick]

``--quick`` prints the tables without overwriting the recorded full-scale
JSON; it is the CI smoke path and asserts the same invariants (identity,
nonzero amortized waves, zero audit violations).
"""

from __future__ import annotations

import gc
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: bootstrap repo + src onto the path
    _root = Path(__file__).resolve().parent.parent
    for entry in (str(_root), str(_root / "src")):
        if entry not in sys.path:
            sys.path.insert(0, entry)

import numpy as np

from benchmarks.conftest import RESULTS_DIR, emit, emit_json, full_grid, percentiles
from repro.experiments.settings import ExperimentSettings
from repro.netmodel.vnf import VNFCatalog
from repro.resilience.metrics import MetricsTracker
from repro.service.batch import BatchAdmissionEngine
from repro.service.ledger import ShardedCapacityLedger
from repro.service.server import replay_trace
from repro.service.trace import TracePhase, flash_crowd_phases, synthetic_trace
from repro.topology.gtitm import WaxmanParameters, generate_gtitm_topology
from repro.topology.placement import CloudletPlacementConfig, build_mec_network
from repro.util.tables import format_table

SEED = 23

#: Reference GT-ITM density: 100-node graphs at alpha=0.4 have mean degree ~6.
_REFERENCE_NODES = 100
_REFERENCE_ALPHA = 0.4

#: The per-request fixed costs the union path amortizes (residual snapshot,
#: problem build, solver construction) all scale with network size, and wave
#: width scales with cloudlet count -- so the amortization claim needs the
#: large network.  1024 cloudlets give ~12-member waves and a stable >= 1.5x.
FULL_SCALE = {
    "requests": 1_000_000,
    "num_aps": 10_240,
    "identity_prefix": 2_000,
    "amortization_requests": 6_000,
}
QUICK_SCALE = {
    "requests": 20_000,
    "num_aps": 10_240,
    "identity_prefix": 600,
    "amortization_requests": 2_000,
}

BASE_RATE = 600.0
FLASH_MULTIPLIER = 4.0
FLASH_FRACTION = 0.2
WINDOW = 1.0
QUEUE_LIMIT = 2048
HOLDING = 2.0
NUM_SHARDS = 16
AUDIT_EVERY = 200
SPEEDUP_FLOOR = 1.5
AMORTIZATION_REPEATS = 3


def build_topology(num_aps: int, rng):
    """Degree-controlled Waxman topology + cloudlet placement."""
    params = WaxmanParameters(alpha=_REFERENCE_ALPHA * _REFERENCE_NODES / num_aps)
    graph = generate_gtitm_topology(num_aps, params=params, rng=rng)
    return build_mec_network(
        graph,
        config=CloudletPlacementConfig(
            cloudlet_fraction=0.10, capacity_range=(4000, 8000)
        ),
        rng=rng,
    )


def make_engine(network, mode: str, seed: int) -> BatchAdmissionEngine:
    ledger = ShardedCapacityLedger(
        {v: network.capacity(v) for v in network.cloudlets}, num_shards=NUM_SHARDS
    )
    return BatchAdmissionEngine(
        network,
        ledger=ledger,
        backend="warm",
        mode=mode,
        queue_limit=QUEUE_LIMIT,
        rng=np.random.default_rng(seed),
    )


def run_bench(scale: dict):
    settings = ExperimentSettings(
        num_aps=scale["num_aps"],
        capacity_range=(4000, 8000),
        sfc_length_range=(3, 5),
    )
    rng = np.random.default_rng(SEED)
    started = time.perf_counter()
    network = build_topology(scale["num_aps"], rng)
    catalog = VNFCatalog.random(rng=rng)
    build_seconds = time.perf_counter() - started

    def trace(phases, trace_seed):
        return synthetic_trace(
            phases, catalog, settings, rng=np.random.default_rng(trace_seed),
            holding_time=HOLDING,
        )

    # 1. Identity: batched == sequential on a shared trace prefix.
    prefix = (TracePhase(scale["identity_prefix"], BASE_RATE * FLASH_MULTIPLIER, "flash"),)
    runs = {}
    for mode in ("batched", "sequential"):
        engine = make_engine(network, mode, seed=SEED + 1)
        stats = replay_trace(engine, trace(prefix, SEED + 2), window=WINDOW,
                             keep_records=True)
        runs[mode] = (engine, stats)
    keys = {
        mode: [r.identity_key() for r in stats.records]
        for mode, (_, stats) in runs.items()
    }
    ledgers = {mode: engine.ledger for mode, (engine, _) in runs.items()}
    identical = keys["batched"] == keys["sequential"] and all(
        ledgers["batched"].used(v) == ledgers["sequential"].used(v)
        for v in ledgers["batched"].nodes
    )
    assert identical, "batched and sequential admission diverged on the prefix"

    # 2. Amortization: the flash-crowd replica, both modes, fresh ledgers.
    #    Best-of-N with GC paused: the work is deterministic per mode, so the
    #    minimum is the least-perturbed observation of the same computation.
    flash = (TracePhase(
        scale["amortization_requests"], BASE_RATE * FLASH_MULTIPLIER, "flash"
    ),)
    flash_trace = list(trace(flash, SEED + 4))  # materialize outside the clock
    repeat_seconds: dict[str, list[float]] = {"batched": [], "sequential": []}
    batched_engine = None
    for _ in range(AMORTIZATION_REPEATS):
        for mode in ("batched", "sequential"):
            engine = make_engine(network, mode, seed=SEED + 3)
            gc.collect()
            gc.disable()
            t0 = time.perf_counter()
            replay_trace(engine, flash_trace, window=WINDOW)
            elapsed = time.perf_counter() - t0
            gc.enable()
            repeat_seconds[mode].append(elapsed)
            if mode == "batched":
                batched_engine = engine
    batched_best = min(repeat_seconds["batched"])
    sequential_best = min(repeat_seconds["sequential"])
    speedup = sequential_best / batched_best
    assert batched_engine.stats["amortized_waves"] > 0, "no wave ever coalesced"

    # 3. The main trace, batched, with metrics and periodic refold audits.
    phases = flash_crowd_phases(
        scale["requests"],
        base_rate=BASE_RATE,
        flash_multiplier=FLASH_MULTIPLIER,
        flash_fraction=FLASH_FRACTION,
    )
    engine = make_engine(network, "batched", seed=SEED + 5)
    metrics = MetricsTracker(record_outcomes=False)
    main_stats = replay_trace(
        engine, trace(phases, SEED + 6), window=WINDOW, metrics=metrics,
        audit_every=AUDIT_EVERY,
    )

    points = []
    for label in ("poisson", "flash"):
        samples = main_stats.latencies.get(label, [])
        pct = percentiles(samples)
        points.append(
            {
                "phase": label,
                "requests": len(samples),
                "latency_p50_ms": pct["p50"] * 1e3,
                "latency_p90_ms": pct["p90"] * 1e3,
                "latency_p99_ms": pct["p99"] * 1e3,
            }
        )
    report = metrics.report
    record = {
        "config": {
            "requests": scale["requests"],
            "num_aps": scale["num_aps"],
            "cloudlets": network.num_cloudlets,
            "shards": NUM_SHARDS,
            "backend": "warm",
            "base_rate": BASE_RATE,
            "flash_multiplier": FLASH_MULTIPLIER,
            "flash_fraction": FLASH_FRACTION,
            "window": WINDOW,
            "queue_limit": QUEUE_LIMIT,
            "holding_time": HOLDING,
            "audit_every": AUDIT_EVERY,
            "seed": SEED,
            "topology_build_seconds": round(build_seconds, 3),
        },
        "points": points,
        "extra": {
            "throughput_rps": main_stats.throughput,
            "wall_seconds": main_stats.wall_seconds,
            "admitted": main_stats.admitted,
            "shed": main_stats.shed,
            "shed_rate": main_stats.shed_rate,
            "windows": main_stats.windows,
            "audits": main_stats.audits,
            "audit_violations": 0,  # audit_sharded raises otherwise
            "queue_depth": report.queue_depth_stats(),
            "engine_stats": dict(engine.stats),
            "identity": {
                "prefix_requests": scale["identity_prefix"],
                "identical": identical,
            },
            "amortization": {
                "flash_requests": scale["amortization_requests"],
                "repeats": AMORTIZATION_REPEATS,
                "batched_seconds": batched_best,
                "sequential_seconds": sequential_best,
                "batched_repeat_seconds": repeat_seconds["batched"],
                "sequential_repeat_seconds": repeat_seconds["sequential"],
                "speedup": speedup,
                "waves": batched_engine.stats["waves"],
                "amortized_waves": batched_engine.stats["amortized_waves"],
                "union_members": batched_engine.stats["union_members"],
            },
        },
    }
    return record


def render_tables(record) -> str:
    extra = record["extra"]
    latency = format_table(
        ["phase", "requests", "p50 ms", "p90 ms", "p99 ms"],
        [
            [
                p["phase"],
                p["requests"],
                round(p["latency_p50_ms"], 3),
                round(p["latency_p90_ms"], 3),
                round(p["latency_p99_ms"], 3),
            ]
            for p in record["points"]
        ],
        title=(
            f"Admission latency, {record['config']['requests']} requests "
            f"({record['config']['cloudlets']} cloudlets, warm backend, batched)"
        ),
    )
    amort = extra["amortization"]
    summary = format_table(
        ["metric", "value"],
        [
            ["throughput (req/s)", round(extra["throughput_rps"], 1)],
            ["wall seconds", round(extra["wall_seconds"], 2)],
            ["admitted", extra["admitted"]],
            ["shed rate", round(extra["shed_rate"], 4)],
            ["audits (violations)", f"{extra['audits']} (0)"],
            ["flash speedup (seq/batched)", round(amort["speedup"], 2)],
            ["amortized waves", f"{amort['amortized_waves']}/{amort['waves']}"],
        ],
        title="Streaming admission summary",
    )
    return latency + "\n\n" + summary


def bench_admission_service(benchmark, results_dir):
    scale = FULL_SCALE if full_grid() else QUICK_SCALE
    record = benchmark.pedantic(lambda: run_bench(scale), rounds=1, iterations=1)
    if full_grid():
        assert record["extra"]["amortization"]["speedup"] >= SPEEDUP_FLOOR
    emit(results_dir, "admission_service", render_tables(record))
    emit_json(
        results_dir,
        "BENCH_admission_service",
        config=record["config"],
        points=record["points"],
        extra=record["extra"],
    )


def main(argv):
    unknown = [a for a in argv if a != "--quick"]
    if unknown:
        print(f"usage: bench_admission_service.py [--quick] (got {unknown})")
        return 2
    quick = "--quick" in argv
    record = run_bench(QUICK_SCALE if quick else FULL_SCALE)
    text = render_tables(record)
    if quick:
        # CI smoke: print, assert the invariants, do not overwrite the record.
        print(text)
        assert record["extra"]["identity"]["identical"]
        assert record["extra"]["amortization"]["amortized_waves"] > 0
    else:
        assert record["extra"]["amortization"]["speedup"] >= SPEEDUP_FLOOR, (
            f"flash-crowd amortization {record['extra']['amortization']['speedup']:.2f}x "
            f"below the {SPEEDUP_FLOOR}x floor"
        )
        RESULTS_DIR.mkdir(exist_ok=True)
        emit(RESULTS_DIR, "admission_service", text)
        emit_json(
            RESULTS_DIR,
            "BENCH_admission_service",
            config=record["config"],
            points=record["points"],
            extra=record["extra"],
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
