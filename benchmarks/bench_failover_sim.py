"""Extension bench: simulated availability vs the locality radius l.

Uses the discrete-event failover simulator to measure, per radius, the
chain availability and its decomposition into dead-position downtime (what
the paper's Eq. 1 models) and switchover downtime (the state-sync latency
l exists to bound).  Quantifies the trade-off the paper motivates but does
not measure.
"""

from __future__ import annotations

from benchmarks.conftest import trials_per_point, emit, emit_json
from repro.algorithms.heuristic import MatchingHeuristic
from repro.experiments.settings import DEFAULT_SETTINGS
from repro.experiments.workload import make_trial
from repro.simulation import SimulationConfig, simulate_solution
from repro.util.rng import as_rng, spawn_rng
from repro.util.tables import format_table

RADII: tuple[tuple[str, int], ...] = (("1", 1), ("2", 2), ("unrestricted", 99))
SIM_CONFIG = SimulationConfig(horizon=5_000.0, base_delay=0.002, per_hop_delay=0.01)


def bench_failover_by_radius(benchmark, results_dir):
    instances = max(3, trials_per_point() // 3)
    heuristic = MatchingHeuristic()

    def sweep():
        rows = []
        for label, radius in RADII:
            settings = DEFAULT_SETTINGS.vary(radius=radius, residual_fraction=0.5)
            static = avail = dead = switch = mean_sw = 0.0
            for child in spawn_rng(as_rng(51), instances):
                instance = make_trial(settings, rng=child)
                result = heuristic.solve(instance.problem, rng=child)
                report = simulate_solution(
                    instance.problem, result.solution, SIM_CONFIG, rng=child
                )
                static += result.reliability
                avail += report.availability
                dead += report.dead_fraction
                switch += report.switchover_fraction
                mean_sw += report.mean_switchover
            rows.append(
                [
                    label,
                    static / instances,
                    avail / instances,
                    dead / instances,
                    switch / instances,
                    mean_sw / instances * 1e3,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        results_dir,
        "failover_by_radius",
        format_table(
            [
                "l",
                "static rel",
                "simulated avail",
                "dead frac",
                "switch frac",
                "mean sw (x1e-3)",
            ],
            rows,
            title=(
                f"Failover simulation vs locality radius ({instances} instances, "
                f"horizon {SIM_CONFIG.horizon:.0f})"
            ),
        ),
    )

    emit_json(
        results_dir,
        "BENCH_failover_by_radius",
        config={
            "workload": "discrete-event failover simulation vs locality radius",
            "radii": [radius for _, radius in RADII],
            "instances_per_radius": instances,
            "horizon": SIM_CONFIG.horizon,
            "base_delay": SIM_CONFIG.base_delay,
            "per_hop_delay": SIM_CONFIG.per_hop_delay,
            "seed": 51,
        },
        points=[
            {
                "radius": label,
                "static_reliability": static_rel,
                "simulated_availability": avail,
                "dead_fraction": dead,
                "switchover_fraction": switch,
                "mean_switchover_ms": mean_sw,
            }
            for label, static_rel, avail, dead, switch, mean_sw in rows
        ],
    )

    # the locality cost signal: mean switchover is weakly increasing in l
    mean_switchovers = [row[5] for row in rows]
    assert mean_switchovers[0] <= mean_switchovers[-1] + 0.5
    # and the simulator's availability tracks the static prediction broadly
    for row in rows:
        assert abs(row[1] - row[2]) < 0.1
