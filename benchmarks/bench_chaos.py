"""Extension bench: scripted chaos campaigns end to end.

Runs the builtin chaos scenarios (quick: 600 s, soak: 10 200 s of
simulated time) through :func:`repro.chaos.run_chaos_campaign` -- scripted
failure storms, rolling outages, flapping cloudlets, and load surges
driving the resilient stream behind the circuit breaker, with the
invariant auditor re-deriving ledger occupancy and chain reliabilities on
its cadence the whole way.  Reports per-campaign wall-clock, simulated
seconds per wall second, audit counts, and SLO attainment, and persists
the quick campaign's full ``repro-bench/1`` report JSON.

Campaigns run under the deterministic fake clock so the emitted campaign
facts (everything except wall-clock timing) are bit-identical across
machines and runs.

Run standalone for a quick smoke check (used by CI)::

    python benchmarks/bench_chaos.py --quick
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: bootstrap repo + src onto the path
    _root = Path(__file__).resolve().parent.parent
    for entry in (str(_root), str(_root / "src")):
        if entry not in sys.path:
            sys.path.insert(0, entry)

from benchmarks.conftest import RESULTS_DIR, emit, emit_json, percentiles
from repro.chaos import run_chaos_campaign
from repro.util.tables import format_table

SEED = 11


def run_campaigns(scenarios):
    """Run each scenario once under the fake clock; return (rows, reports)."""
    previous = os.environ.get("REPRO_FAKE_CLOCK")
    os.environ["REPRO_FAKE_CLOCK"] = "1"
    try:
        rows, reports = [], {}
        for name in scenarios:
            start = time.perf_counter()
            report = run_chaos_campaign(name, seed=SEED)
            elapsed = time.perf_counter() - start
            reports[name] = report
            attainment = sum(p.slo_attainment for p in report.phases) / len(
                report.phases
            )
            mttr_pct = percentiles(report.resilience.mttr_samples)
            rows.append(
                [
                    name,
                    round(report.horizon, 1),
                    round(elapsed, 3),
                    round(report.horizon / elapsed, 1),
                    report.audits,
                    report.resilience.invariant_violations,
                    len(report.breaker_transitions) - 1,
                    round(attainment, 4),
                    round(mttr_pct["p50"], 3),
                    round(mttr_pct["p99"], 3),
                ]
            )
        return rows, reports
    finally:
        if previous is None:
            os.environ.pop("REPRO_FAKE_CLOCK", None)
        else:
            os.environ["REPRO_FAKE_CLOCK"] = previous


def render_table(rows):
    return format_table(
        [
            "scenario",
            "sim seconds",
            "wall s",
            "sim/wall",
            "audits",
            "violations",
            "transitions",
            "mean attainment",
            "MTTR p50",
            "MTTR p99",
        ],
        rows,
        title=f"Chaos campaigns (seed {SEED}, fake clock, builtin scenarios)",
    )


def _check(rows):
    # A campaign with audit violations or a breaker that never moved is a
    # regression, not a slow run -- fail loudly before recording numbers.
    for row in rows:
        assert row[5] == 0, f"invariant violations in {row[0]}: {row}"
        assert row[6] > 0, f"breaker never transitioned in {row[0]}: {row}"


def bench_chaos_campaigns(benchmark, results_dir):
    rows, reports = benchmark.pedantic(
        lambda: run_campaigns(("quick", "soak")), rounds=1, iterations=1
    )
    _check(rows)
    emit(results_dir, "chaos_campaigns", render_table(rows))
    quick = reports["quick"].to_dict()
    emit_json(
        results_dir,
        "chaos_campaigns",
        config=quick["config"],
        points=quick["points"],
        extra={
            "summary": quick["summary"],
            "breaker_timeline": quick["breaker_timeline"],
        },
    )


def main(argv):
    unknown = [a for a in argv if a != "--quick"]
    if unknown:
        print(f"usage: bench_chaos.py [--quick] (got {unknown})")
        return 2
    quick = "--quick" in argv
    scenarios = ("quick",) if quick else ("quick", "soak")
    rows, reports = run_campaigns(scenarios)
    _check(rows)
    text = render_table(rows)
    if quick:
        print(text)
    else:
        RESULTS_DIR.mkdir(exist_ok=True)
        emit(RESULTS_DIR, "chaos_campaigns", text)
        doc = reports["quick"].to_dict()
        emit_json(
            RESULTS_DIR,
            "chaos_campaigns",
            config=doc["config"],
            points=doc["points"],
            extra={
                "summary": doc["summary"],
                "breaker_timeline": doc["breaker_timeline"],
            },
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
