"""Figure 2: performance vs network function reliability (0.6 to 0.9).

Reliability of each function is drawn from [0.55, 0.65), [0.65, 0.75),
[0.75, 0.85), [0.85, 0.95].  Regenerates panels (a) reliability, (b)
randomized usage, (c) running time.

Paper claims (Section 7.2): chain reliability rises with function
reliability and the gap between the three algorithms *shrinks* (Randomized
is 2.03% below ILP at r~0.6 but only 0.79% below at r~0.8); Randomized can
exceed the ILP via capacity violations.
"""

from __future__ import annotations

from benchmarks.conftest import emit, emit_json, trials_per_point
from repro.experiments.figures import FIG2_RELIABILITY_INTERVALS, run_figure2
from repro.experiments.reporting import render_figure
from repro.experiments.serialization import series_records
from repro.experiments.settings import DEFAULT_SETTINGS
from repro.parallel import resolve_jobs
from repro.util.timing import time_call


def bench_figure2(benchmark, results_dir):
    trials = trials_per_point()
    timing: dict[str, float] = {}

    def sweep():
        series, timing["seconds"] = time_call(
            run_figure2,
            DEFAULT_SETTINGS,
            intervals=FIG2_RELIABILITY_INTERVALS,
            trials=trials,
            rng=2,
        )
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        results_dir,
        "fig2_reliability",
        render_figure(series)
        + f"\n\n({trials} trials/point; paper used 1000.)",
    )
    emit_json(
        results_dir,
        "fig2_reliability",
        config={
            "grid": [list(interval) for interval in FIG2_RELIABILITY_INTERVALS],
            "trials": trials,
            "seed": 2,
            "reps": 1,
            "jobs": resolve_jobs(None),
        },
        points=series_records(series),
        extra={"sweep_seconds": timing["seconds"]},
    )

    # chain reliability must rise with function reliability for every algorithm
    for name in series.algorithms():
        rels = series.reliability_series(name)
        assert rels[-1] > rels[0], (name, rels)
    # the ILP-vs-heuristic gap shrinks from the lowest to the highest interval
    gaps = [
        series.points[i]["ILP"].reliability
        - series.points[i]["Heuristic"].reliability
        for i in (0, len(series.x_values) - 1)
    ]
    assert gaps[1] <= gaps[0] + 0.02
