"""Ablation: the from-scratch Hungarian solver vs scipy's assignment solver.

Algorithm 2's inner loop is a min-cost maximum matching; this bench
measures both backends on matching instances shaped like the ones the
heuristic actually builds (|V| cloudlet rows vs N item columns, sparse
locality edges) and on dense square assignment matrices.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.matching.hungarian import solve_assignment
from repro.matching.mincost import min_cost_max_matching
from repro.util.tables import format_table


def _heuristic_shaped_edges(n_rows: int, n_cols: int, seed: int):
    rng = np.random.default_rng(seed)
    return {
        (r, c): float(rng.uniform(0.5, 6.0))
        for r in range(n_rows)
        for c in range(n_cols)
        if rng.uniform() < 0.3
    }


@pytest.mark.parametrize("backend", ["scipy", "own"])
def bench_mincost_heuristic_shape(benchmark, backend):
    """10 cloudlets x 150 items at 30% edge density (one Algorithm 2 round)."""
    edges = _heuristic_shaped_edges(10, 150, seed=5)
    result = benchmark(min_cost_max_matching, 10, 150, edges, backend)
    assert len(result) == 10  # every cloudlet matched at this density


@pytest.mark.parametrize("size", [50, 150])
def bench_hungarian_dense(benchmark, size):
    """Dense square assignment with the from-scratch JV solver."""
    rng = np.random.default_rng(size)
    cost = rng.uniform(0, 100, size=(size, size))
    _, total = benchmark(solve_assignment, cost)
    assert total > 0


def bench_matching_report(benchmark, results_dir):
    """Correctness cross-check table for the two backends."""

    def crosscheck():
        rows = []
        for n_rows, n_cols, seed in [(10, 100, 1), (10, 300, 2), (20, 200, 3)]:
            edges = _heuristic_shaped_edges(n_rows, n_cols, seed)
            a = min_cost_max_matching(n_rows, n_cols, edges, backend="scipy")
            b = min_cost_max_matching(n_rows, n_cols, edges, backend="own")
            rows.append(
                [
                    f"{n_rows}x{n_cols}",
                    len(a),
                    len(b),
                    sum(e.cost for e in a),
                    sum(e.cost for e in b),
                ]
            )
            assert len(a) == len(b)
            assert abs(sum(e.cost for e in a) - sum(e.cost for e in b)) < 1e-6
        return rows

    rows = benchmark.pedantic(crosscheck, rounds=1, iterations=1)
    emit(
        results_dir,
        "matching_backends",
        format_table(
            ["instance", "card(scipy)", "card(own)", "cost(scipy)", "cost(own)"],
            rows,
            title="Matching backends agree on cardinality and cost",
        ),
    )
