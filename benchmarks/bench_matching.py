"""Ablation: the from-scratch Hungarian solver vs scipy's assignment solver.

Algorithm 2's inner loop is a min-cost maximum matching; this bench
measures both backends on matching instances shaped like the ones the
heuristic actually builds (|V| cloudlet rows vs N item columns, sparse
locality edges) and on dense square assignment matrices.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import emit, emit_json
from repro.matching.hungarian import solve_assignment
from repro.matching.mincost import min_cost_max_matching
from repro.util.tables import format_table


def _heuristic_shaped_edges(n_rows: int, n_cols: int, seed: int):
    rng = np.random.default_rng(seed)
    return {
        (r, c): float(rng.uniform(0.5, 6.0))
        for r in range(n_rows)
        for c in range(n_cols)
        if rng.uniform() < 0.3
    }


@pytest.mark.parametrize("backend", ["scipy", "own"])
def bench_mincost_heuristic_shape(benchmark, backend):
    """10 cloudlets x 150 items at 30% edge density (one Algorithm 2 round)."""
    edges = _heuristic_shaped_edges(10, 150, seed=5)
    result = benchmark(min_cost_max_matching, 10, 150, edges, backend)
    assert len(result) == 10  # every cloudlet matched at this density


@pytest.mark.parametrize("size", [50, 150])
def bench_hungarian_dense(benchmark, size):
    """Dense square assignment with the from-scratch JV solver."""
    rng = np.random.default_rng(size)
    cost = rng.uniform(0, 100, size=(size, size))
    _, total = benchmark(solve_assignment, cost)
    assert total > 0


#: (rows, cols, seed) instances for the backend cross-check.
CROSSCHECK_GRID = [(10, 100, 1), (10, 300, 2), (20, 200, 3)]

#: Timed calls per backend per instance; the minimum is recorded.
TIMING_REPS = 3


def _timed_solve(n_rows, n_cols, edges, backend):
    """Solve once per rep and return (result, best_seconds)."""
    best = float("inf")
    result = None
    for _ in range(TIMING_REPS):
        start = time.perf_counter()
        result = min_cost_max_matching(n_rows, n_cols, edges, backend=backend)
        best = min(best, time.perf_counter() - start)
    return result, best


def bench_matching_report(benchmark, results_dir):
    """Correctness cross-check table (and timings) for the two backends."""

    def crosscheck():
        points = []
        for n_rows, n_cols, seed in CROSSCHECK_GRID:
            edges = _heuristic_shaped_edges(n_rows, n_cols, seed)
            a, t_scipy = _timed_solve(n_rows, n_cols, edges, "scipy")
            b, t_own = _timed_solve(n_rows, n_cols, edges, "own")
            points.append(
                {
                    "instance": f"{n_rows}x{n_cols}",
                    "seed": seed,
                    "cardinality_scipy": len(a),
                    "cardinality_own": len(b),
                    "cost_scipy": sum(e.cost for e in a),
                    "cost_own": sum(e.cost for e in b),
                    "scipy_seconds": t_scipy,
                    "own_seconds": t_own,
                }
            )
            assert len(a) == len(b)
            assert abs(points[-1]["cost_scipy"] - points[-1]["cost_own"]) < 1e-6
        return points

    points = benchmark.pedantic(crosscheck, rounds=1, iterations=1)
    rows = [
        [
            p["instance"],
            p["cardinality_scipy"],
            p["cardinality_own"],
            p["cost_scipy"],
            p["cost_own"],
        ]
        for p in points
    ]
    emit(
        results_dir,
        "matching_backends",
        format_table(
            ["instance", "card(scipy)", "card(own)", "cost(scipy)", "cost(own)"],
            rows,
            title="Matching backends agree on cardinality and cost",
        ),
    )
    emit_json(
        results_dir,
        "BENCH_matching_backends",
        config={
            "workload": "heuristic-shaped mincost matching, 30% edge density",
            "grid": [list(point) for point in CROSSCHECK_GRID],
            "reps_per_backend": TIMING_REPS,
            "timing": "min-of-reps per backend per instance",
        },
        points=points,
    )
