"""Matching backends: cross-check, consume replay, and online delta replay.

Algorithm 2's inner loop is a min-cost maximum matching; this bench covers
the four backends of :mod:`repro.matching.mincost` three ways:

* **cross-check grid** -- every backend solves the same heuristic-shaped
  instances; cardinality and total cost must agree exactly (the exactness
  contract -- pairings may permute within equal-cost matchings).  The
  per-backend timings double as the *cold single-shot* record: summed over
  the grid the warm solver must be no slower than the dense scipy
  reduction (it skips the ``(n + m)^2`` big-M padding).
* **fig3-shape consume replay** -- the round-graph *sequence* a real
  Algorithm 2 solve produces on Figure-3-shaped instances is captured
  once (from the incremental engine under the dense reference backend),
  each backend's identity is asserted on every captured graph, and only
  then are the raw matchers timed over the whole sequence.  Passes are
  cache-cold: a fresh workspace (dense) or a fresh dual store (warm) per
  pass, min-of-reps reported.  This is the sparse backend's home turf:
  every real-matched row re-augments every round (matched items are
  consumed), so the delta keeps almost nothing and scipy/sparse C kernels
  win on wall-clock -- recorded honestly below.
* **online perturbation replay** -- the workload the delta core exists
  for: one base round graph followed by a stream of small events
  (cloudlet failures, placed-instance failures, recovered capacity
  returning items and rows) re-solved after each event.  The warm solver
  keeps almost every pair and re-augments a handful of orphans per event
  while scipy/sparse pay a full solve; here ``warm`` must beat both.
  Serving semantics: the base-round solve is each pass's *untimed*
  bootstrap (a deployed system already holds the current matching when an
  event arrives) and only the event re-solves are timed, for every
  backend; warm reps restart from a ``snapshot()`` of the bootstrapped
  state so each rep reconciles identical warm state.
  Identity is asserted against the dense reference on every event graph
  before timing, and the solver's :class:`~repro.matching.warmstart.WarmStats`
  counters (rows kept / re-augmented, quick matches, heap pops, dual
  repairs) are printed and recorded alongside the timings.

Run standalone for a quick smoke check (used by CI)::

    python benchmarks/bench_matching.py --quick
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: bootstrap repo + src onto the path
    _root = Path(__file__).resolve().parent.parent
    for entry in (str(_root), str(_root / "src")):
        if entry not in sys.path:
            sys.path.insert(0, entry)

import numpy as np
import pytest

from benchmarks.conftest import RESULTS_DIR, emit, emit_json
from repro.algorithms.heuristic import MatchingHeuristic
from repro.experiments.instances import InstanceSpec, build_instance
from repro.matching.hungarian import solve_assignment
from repro.matching.incremental import RoundState, warm_solver_for
from repro.matching.mincost import (
    BACKENDS,
    MatchingWorkspace,
    min_cost_max_matching,
    min_cost_max_matching_arrays,
)
from repro.util.tables import format_table


def _heuristic_shaped_edges(n_rows: int, n_cols: int, seed: int):
    rng = np.random.default_rng(seed)
    return {
        (r, c): float(rng.uniform(0.5, 6.0))
        for r in range(n_rows)
        for c in range(n_cols)
        if rng.uniform() < 0.3
    }


@pytest.mark.parametrize("backend", list(BACKENDS))
def bench_mincost_heuristic_shape(benchmark, backend):
    """10 cloudlets x 150 items at 30% edge density (one Algorithm 2 round)."""
    edges = _heuristic_shaped_edges(10, 150, seed=5)
    result = benchmark(min_cost_max_matching, 10, 150, edges, backend)
    assert len(result) == 10  # every cloudlet matched at this density


@pytest.mark.parametrize("size", [50, 150])
def bench_hungarian_dense(benchmark, size):
    """Dense square assignment with the from-scratch JV solver."""
    rng = np.random.default_rng(size)
    cost = rng.uniform(0, 100, size=(size, size))
    _, total = benchmark(solve_assignment, cost)
    assert total > 0


# -- cross-check grid --------------------------------------------------------------

#: (rows, cols, seed) instances for the backend cross-check.
CROSSCHECK_GRID = [(10, 100, 1), (10, 300, 2), (20, 200, 3)]

#: Timed calls per backend per instance; the minimum is recorded.
TIMING_REPS = 3


def _timed_solve(n_rows, n_cols, edges, backend):
    """Solve once per rep and return (result, best_seconds)."""
    best = float("inf")
    result = None
    for _ in range(TIMING_REPS):
        start = time.perf_counter()
        result = min_cost_max_matching(n_rows, n_cols, edges, backend=backend)
        best = min(best, time.perf_counter() - start)
    return result, best


def run_crosscheck():
    """Every backend on every grid instance; exact cardinality/cost agreement."""
    points = []
    for n_rows, n_cols, seed in CROSSCHECK_GRID:
        edges = _heuristic_shaped_edges(n_rows, n_cols, seed)
        point: dict[str, object] = {"instance": f"{n_rows}x{n_cols}", "seed": seed}
        reference = None
        for backend in BACKENDS:
            result, seconds = _timed_solve(n_rows, n_cols, edges, backend)
            summary = (len(result), round(sum(e.cost for e in result), 9))
            point[f"cardinality_{backend}"] = summary[0]
            point[f"cost_{backend}"] = summary[1]
            point[f"{backend}_seconds"] = seconds
            if reference is None:
                reference = summary
            else:
                assert summary == reference, (backend, summary, reference)
        points.append(point)
    return points


def cold_single_shot(crosscheck_points):
    """Aggregate cold single-shot record: warm vs the dense scipy reduction.

    Summed over the cross-check grid (min-of-reps per instance), a cold
    warm-solver solve must be no slower than the dense reduction -- it
    solves the same CSR problem without materialising the ``(n + m)^2``
    big-M padding.
    """
    scipy_total = sum(p["scipy_seconds"] for p in crosscheck_points)
    warm_total = sum(p["warm_seconds"] for p in crosscheck_points)
    return {
        "workload": "cold single-shot solves summed over the cross-check grid",
        "scipy_seconds": scipy_total,
        "warm_seconds": warm_total,
        "warm_vs_scipy": scipy_total / warm_total,
    }


# -- fig3-shape round replay -------------------------------------------------------

#: Figure-3-shaped instances (radius-1 locality => ~10%-dense round graphs).
#: Labels name the fig3 x-axis point (network size |V|).
FIG3_SHAPES = [
    (
        "V=1000",
        InstanceSpec(
            seed=9202, family="waxman", num_nodes=1000, cloudlet_count=100,
            chain_length=16, radius=1, residual_scale=1.0, max_backups=50,
        ),
    ),
    (
        "V=1200",
        InstanceSpec(
            seed=9203, family="waxman", num_nodes=1200, cloudlet_count=120,
            chain_length=16, radius=1, residual_scale=1.0, max_backups=60,
        ),
    ),
    (
        "V=1500",
        InstanceSpec(
            seed=9204, family="waxman", num_nodes=1500, cloudlet_count=150,
            chain_length=16, radius=1, residual_scale=1.0, max_backups=70,
        ),
    ),
]

#: Timed passes per backend per instance in the replay; minimum reported.
REPLAY_REPS = 5

#: Backends timed in the replay.  ``own`` is exact but O((n+m)^3) dense
#: Python -- seconds per pass at replay scale -- so the cross-check grid
#: and the property tests cover it instead.
REPLAY_BACKENDS = ("scipy", "sparse", "warm")


def capture_round_graphs(problem):
    """The round-graph sequence of one Algorithm 2 solve, as copies.

    Wraps :meth:`RoundState.build_edges` for the duration of a single
    dense-backend solve (restored in ``finally``), snapshotting each
    round's ``(rows, cols, edge_rows, edge_cols, edge_costs, edge_idx)``
    before the engine consumes it (``edge_idx`` is the round's universe
    positions, which the delta path filters its CSR layout from).
    ``stop_at_expectation=False`` packs until no edge remains -- the
    resource-exhaustion regime whose round count Figure 3's
    scarce-capacity points hit.
    """
    captured = []
    original = RoundState.build_edges

    def recording(self):
        rows, cols, edge_rows, edge_cols, edge_costs = original(self)
        captured.append(
            (list(rows), cols.copy(), edge_rows.copy(), edge_cols.copy(),
             list(edge_costs), self.last_edge_idx.copy())
        )
        return rows, cols, edge_rows, edge_cols, edge_costs

    RoundState.build_edges = recording
    try:
        MatchingHeuristic(backend="scipy", stop_at_expectation=False).solve(problem)
    finally:
        RoundState.build_edges = original
    return captured


def _replay_dense(sequence, backend):
    """One cache-cold pass: a fresh workspace, every captured round in order."""
    workspace = MatchingWorkspace()
    return [
        min_cost_max_matching_arrays(
            len(rows), len(cols), edge_rows, edge_cols, edge_costs,
            backend=backend, workspace=workspace,
        )
        for rows, cols, edge_rows, edge_cols, edge_costs, _ in sequence
    ]


def _replay_warm(problem, sequence, delta=False, solver=None):
    """One pass over ``sequence`` on a warm solver, duals carried across rounds.

    With ``delta=True`` the persistent matching is carried too
    (:meth:`~repro.matching.warmstart.DualReusingSolver.solve_round_delta`
    with each round's universe ``edge_idx``); the solver is returned next
    to the matchings so callers can read its ``stats`` counters.  By default
    the pass is cache-cold (a fresh dual+matching store); passing ``solver``
    continues from that solver's live state instead -- the online-serving
    replay uses this with :meth:`snapshot`/:meth:`restore` to re-run the
    event stream from an identical warm checkpoint every rep.
    """
    if solver is None:
        solver = warm_solver_for(problem, problem.ledger())
    if delta:
        matchings = [
            solver.solve_round_delta(
                rows, cols, edge_rows, edge_cols, edge_costs, edge_idx=edge_idx
            )
            for rows, cols, edge_rows, edge_cols, edge_costs, edge_idx in sequence
        ]
    else:
        matchings = [
            solver.solve_round(rows, cols, edge_rows, edge_cols, edge_costs)
            for rows, cols, edge_rows, edge_cols, edge_costs, _ in sequence
        ]
    return matchings, solver


def _matching_summary(matchings):
    """Per-round (cardinality, total cost) -- the exactness invariant."""
    out = []
    for matching in matchings:
        cost = sum(e[2] if isinstance(e, tuple) else e.cost for e in matching)
        out.append((len(matching), round(cost, 9)))
    return out


def run_replay(shapes=FIG3_SHAPES, reps=REPLAY_REPS):
    """Capture, identity-check, then time each backend over the sequence.

    ``warm`` times the production path -- the delta engine with universe
    ``edge_idx`` -- even though the consume workload orphans every
    real-matched row each round (matched items are consumed), so the delta
    keeps only dummy-matched rows here.
    """
    points = []
    for label, spec in shapes:
        problem = build_instance(spec)
        sequence = capture_round_graphs(problem)
        timed = [g for g in sequence if g[4]]  # a final empty graph times nothing
        n_rows, n_cols, n_edges = (
            len(timed[0][0]), len(timed[0][1]), len(timed[0][4])
        )

        # Identity before timing: every backend, every captured round graph
        # (the warm solver in both its cold and delta modes).
        reference = _matching_summary(_replay_dense(timed, "scipy"))
        assert _matching_summary(_replay_dense(timed, "sparse")) == reference
        assert _matching_summary(_replay_warm(problem, timed)[0]) == reference
        warm_matchings, warm_solver = _replay_warm(problem, timed, delta=True)
        assert _matching_summary(warm_matchings) == reference

        seconds: dict[str, float] = {}
        for backend in REPLAY_BACKENDS:
            best = float("inf")
            for _ in range(reps):
                start = time.perf_counter()
                if backend == "warm":
                    _replay_warm(problem, timed, delta=True)
                else:
                    _replay_dense(timed, backend)
                best = min(best, time.perf_counter() - start)
            seconds[backend] = best

        points.append(
            {
                "instance": label,
                "seed": spec.seed,
                "rounds": len(timed),
                "round0_rows": n_rows,
                "round0_cols": n_cols,
                "round0_edges": n_edges,
                "round0_density": round(n_edges / (n_rows * n_cols), 4),
                "scipy_seconds": seconds["scipy"],
                "sparse_seconds": seconds["sparse"],
                "warm_seconds": seconds["warm"],
                "sparse_speedup": seconds["scipy"] / seconds["sparse"],
                "warm_speedup": seconds["scipy"] / seconds["warm"],
                "warm_stats": warm_solver.stats.as_dict(),
            }
        )
    return points


# -- online perturbation replay ----------------------------------------------------

#: Perturbation events per shape in the online replay.
ONLINE_EVENTS = 60

#: (weights sum to 1) event mix: placed-instance failures dominate, with
#: cloudlet failures and capacity recovery (items / rows returning) mixed in.
_EVENT_KINDS = ("fail_cols", "fail_row", "return_cols", "return_row")
_EVENT_WEIGHTS = (0.45, 0.15, 0.3, 0.1)


def build_online_sequence(base_round, n_events, seed):
    """A deterministic stream of perturbed round graphs from one base round.

    Starting from the captured base graph, each event either *fails* a
    cloudlet row, *fails* 1-3 currently-placed (matched) item columns,
    or *returns* previously failed columns / rows -- the lifecycle
    re-embedding and failure-recovery workload from the paper's mobile
    edge-cloud setting.  Matched columns are tracked with the dense scipy
    reference so the stream is backend-independent; every graph keeps the
    6-tuple shape of :func:`capture_round_graphs` (``edge_idx`` filtered
    from the base round's universe positions).
    """
    rows0, cols0, er0, ec0, costs0, eidx0 = base_round
    costs0 = np.asarray(costs0, dtype=float)
    rng = np.random.default_rng(seed)
    n0, m0 = len(rows0), len(cols0)
    row_alive = np.ones(n0, dtype=bool)
    col_alive = np.ones(m0, dtype=bool)
    workspace = MatchingWorkspace()

    def snapshot():
        row_map = np.cumsum(row_alive) - 1
        col_map = np.cumsum(col_alive) - 1
        mask = row_alive[er0] & col_alive[ec0]
        return (
            [g for g, a in zip(rows0, row_alive) if a],
            cols0[col_alive],
            row_map[er0[mask]].astype(np.intp),
            col_map[ec0[mask]].astype(np.intp),
            costs0[mask].tolist(),
            eidx0[mask],
        )

    sequence = [snapshot()]
    matched_cols: set[int] = set()

    def track(graph):
        rows, cols, er, ec, costs, _ = graph
        result = min_cost_max_matching_arrays(
            len(rows), len(cols), er, ec, costs,
            backend="scipy", workspace=workspace,
        )
        matched_cols.clear()
        matched_cols.update(int(cols[e.col]) for e in result)

    track(sequence[0])
    col_pos = {int(j): p for p, j in enumerate(cols0)}
    for _ in range(n_events - 1):
        kind = rng.choice(_EVENT_KINDS, p=_EVENT_WEIGHTS)
        if kind == "fail_cols":
            pool = [col_pos[j] for j in sorted(matched_cols) if col_alive[col_pos[j]]]
            if not pool:
                kind = "return_cols"
            else:
                take = rng.choice(pool, size=min(len(pool), int(rng.integers(1, 4))),
                                  replace=False)
                col_alive[take] = False
        if kind == "fail_row":
            pool = np.nonzero(row_alive)[0]
            if pool.size <= max(2, n0 // 2):  # keep the instance meaningfully alive
                kind = "return_row"
            else:
                row_alive[int(rng.choice(pool))] = False
        if kind == "return_cols":
            pool = np.nonzero(~col_alive)[0]
            if pool.size:
                back = rng.choice(pool, size=min(pool.size, int(rng.integers(1, 4))),
                                  replace=False)
                col_alive[back] = True
        if kind == "return_row":
            pool = np.nonzero(~row_alive)[0]
            if pool.size:
                row_alive[int(rng.choice(pool))] = True
        graph = snapshot()
        if not graph[4]:  # a graph with no edges times nothing; skip the event
            continue
        sequence.append(graph)
        track(graph)
    return sequence


def run_online_replay(shapes=FIG3_SHAPES, reps=REPLAY_REPS, n_events=ONLINE_EVENTS):
    """Identity-check, then time each backend over the perturbation stream.

    Online-serving semantics: a deployed system already holds the base
    round's matching when an event arrives, so the base solve is each
    pass's *untimed* bootstrap and only the event re-solves are timed --
    for every backend.  scipy/sparse carry no state across rounds (their
    per-event cost is the same either way); the warm solver bootstraps
    once, then every timed rep is :meth:`restore`\\ d to that
    :meth:`snapshot` so it reconciles the same event stream from the same
    warm state.
    """
    points = []
    for label, spec in shapes:
        problem = build_instance(spec)
        base = capture_round_graphs(problem)[0]
        sequence = build_online_sequence(base, n_events, seed=spec.seed + 17)
        events = sequence[1:]

        # Identity before timing, per event graph, against the dense
        # reference -- this is where resurrection events prove the delta
        # engine's repair path exact, not just fast.  Checked on the full
        # stream (covering warm's cold first delta round) and again on the
        # snapshot/restore serving path that the timing loop uses.
        reference = _matching_summary(_replay_dense(sequence, "scipy"))
        assert _matching_summary(_replay_dense(sequence, "sparse")) == reference
        warm_matchings, _ = _replay_warm(problem, sequence, delta=True)
        assert _matching_summary(warm_matchings) == reference

        warm_solver = warm_solver_for(problem, problem.ledger())
        _replay_warm(problem, sequence[:1], delta=True, solver=warm_solver)
        state = warm_solver.snapshot()
        warm_solver.stats.reset()  # count event-serving work only
        served, _ = _replay_warm(problem, events, delta=True, solver=warm_solver)
        assert _matching_summary(served) == reference[1:]
        stats = warm_solver.stats.as_dict()

        seconds: dict[str, float] = {}
        for backend in REPLAY_BACKENDS:
            best = float("inf")
            for _ in range(reps):
                if backend == "warm":
                    warm_solver.restore(state)
                start = time.perf_counter()
                if backend == "warm":
                    _replay_warm(problem, events, delta=True, solver=warm_solver)
                else:
                    _replay_dense(events, backend)
                best = min(best, time.perf_counter() - start)
            seconds[backend] = best

        points.append(
            {
                "instance": label,
                "seed": spec.seed,
                "events": len(events),
                "base_rows": len(base[0]),
                "base_cols": len(base[1]),
                "base_edges": len(base[4]),
                "scipy_seconds": seconds["scipy"],
                "sparse_seconds": seconds["sparse"],
                "warm_seconds": seconds["warm"],
                "warm_speedup": seconds["scipy"] / seconds["warm"],
                "warm_vs_sparse": seconds["sparse"] / seconds["warm"],
                "warm_stats": stats,
            }
        )
    return points


def render_replay_table(points):
    rows = [
        [
            p["instance"],
            p["rounds"],
            f"{p['round0_rows']}x{p['round0_cols']}",
            f"{p['round0_density']:.0%}",
            f"{p['scipy_seconds'] * 1e3:.2f}",
            f"{p['sparse_seconds'] * 1e3:.2f}",
            f"{p['warm_seconds'] * 1e3:.2f}",
            f"{p['sparse_speedup']:.2f}x",
            f"{p['warm_speedup']:.2f}x",
        ]
        for p in points
    ]
    return format_table(
        ["instance", "rounds", "round0", "density", "scipy ms", "sparse ms",
         "warm ms", "sparse", "warm"],
        rows,
        title="Fig3-shape consume replay: per-backend wall-clock (min of reps)",
    )


def _hit_rate(stats):
    reaug = stats["rows_reaugmented"]
    return stats["quick_matches"] / reaug if reaug else 1.0


def render_online_table(points):
    rows = [
        [
            p["instance"],
            p["events"],
            f"{p['base_rows']}x{p['base_cols']}",
            f"{p['scipy_seconds'] * 1e3:.2f}",
            f"{p['sparse_seconds'] * 1e3:.2f}",
            f"{p['warm_seconds'] * 1e3:.2f}",
            f"{p['warm_speedup']:.2f}x",
            f"{p['warm_vs_sparse']:.2f}x",
            f"{p['warm_stats']['rows_kept']}/{p['warm_stats']['rows_total']}",
            f"{_hit_rate(p['warm_stats']):.0%}",
            p["warm_stats"]["heap_pops"],
            p["warm_stats"]["dual_repairs"],
        ]
        for p in points
    ]
    return format_table(
        ["instance", "events", "base", "scipy ms", "sparse ms", "warm ms",
         "vs scipy", "vs sparse", "kept", "quick", "pops", "repairs"],
        rows,
        title=("Online perturbation replay: delta re-solve vs full solves "
               "per event (base solve untimed)"),
    )


def emit_replay(results_dir, points, online_points, cold, reps):
    emit(
        results_dir,
        "matching_replay",
        render_replay_table(points) + "\n\n" + render_online_table(online_points),
    )
    emit_json(
        results_dir,
        "BENCH_matching_backends",
        config={
            "workload": (
                "online perturbation replay on Figure-3-shaped instances "
                "(waxman, radius-1 locality): one Algorithm 2 base round "
                "graph + a seeded stream of cloudlet/instance failures and "
                "recoveries, re-solved after every event"
            ),
            "shapes": [
                {
                    "instance": label,
                    "seed": spec.seed,
                    "num_nodes": spec.num_nodes,
                    "cloudlet_count": spec.cloudlet_count,
                    "chain_length": spec.chain_length,
                    "radius": spec.radius,
                    "max_backups": spec.max_backups,
                }
                for label, spec in FIG3_SHAPES
            ],
            "events_per_shape": ONLINE_EVENTS,
            "reps_per_backend": reps,
            "timing": (
                "online serving: the base-round solve is untimed bootstrap "
                "(a live system already holds the current matching when an "
                "event arrives); min-of-reps of the raw matchers over the "
                "event re-solves only, every backend alike -- scipy/sparse "
                "carry no cross-round state, warm reps restore a snapshot "
                "of the bootstrapped dual+matching store.  Identity "
                "(cardinality + total cost per graph) asserted across "
                "backends, on the full stream and on the snapshot/restore "
                "serving path, before any timing"
            ),
            "excluded": "own (exact but O((n+m)^3) dense Python; cross-check grid covers it)",
        },
        points=online_points,
        extra={
            "consume_replay": {
                "workload": (
                    "full Algorithm 2 round-graph replay, "
                    "stop_at_expectation=False (every real-matched row "
                    "re-augments each round because matched items are "
                    "consumed -- the delta keeps only dummy-matched rows, "
                    "so the C-kernel backends win here; recorded honestly)"
                ),
                "points": points,
            },
            "cold_single_shot": cold,
            "note": (
                f"measured on cpu_count={os.cpu_count()}; matchers are "
                "single-threaded, so speedup is backend-vs-backend on one "
                "core.  The delta core's contract: no slower than the dense "
                "reduction cold, and faster than every full re-solve -- "
                "including sparse -- on the online perturbation workload."
            ),
        },
    )


def bench_matching_report(benchmark, results_dir):
    """Cross-check table plus the consume- and online-replay records."""

    def run():
        return run_crosscheck(), run_replay(), run_online_replay()

    crosscheck, replay, online = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [p["instance"]]
        + [p[f"cardinality_{b}"] for b in BACKENDS]
        + [p[f"cost_{b}"] for b in BACKENDS]
        for p in crosscheck
    ]
    emit(
        results_dir,
        "matching_backends",
        format_table(
            ["instance"]
            + [f"card({b})" for b in BACKENDS]
            + [f"cost({b})" for b in BACKENDS],
            rows,
            title="Matching backends agree on cardinality and cost",
        ),
    )
    emit_json(
        results_dir,
        "BENCH_matching_crosscheck",
        config={
            "workload": "heuristic-shaped mincost matching, 30% edge density",
            "grid": [list(point) for point in CROSSCHECK_GRID],
            "backends": list(BACKENDS),
            "reps_per_backend": TIMING_REPS,
            "timing": "min-of-reps per backend per instance",
        },
        points=crosscheck,
    )
    emit_replay(results_dir, replay, online, cold_single_shot(crosscheck), REPLAY_REPS)
    _assert_replay_records(crosscheck, replay, online)


def _assert_replay_records(crosscheck, replay, online):
    """The recorded performance contract, shared by report and standalone runs.

    * sparse clearly beats the dense reduction on the consume replay;
    * cold single-shots: warm is no slower than the dense reduction
      (aggregate over the cross-check grid);
    * online perturbation replay: warm beats scipy everywhere and beats
      sparse on at least two of the three shapes (per-event full C solves
      cannot keep up with re-augmenting a handful of orphans).
    """
    for point in replay:
        assert point["sparse_speedup"] > 1.3, point
    assert max(p["sparse_speedup"] for p in replay) >= 1.5, replay
    cold = cold_single_shot(crosscheck)
    assert cold["warm_vs_scipy"] >= 1.0, cold
    for point in online:
        assert point["warm_speedup"] > 1.0, point
    beats_sparse = sum(p["warm_vs_sparse"] > 1.0 for p in online)
    assert beats_sparse >= min(2, len(online)), online


def main(argv):
    unknown = [a for a in argv if a != "--quick"]
    if unknown:
        print(f"usage: bench_matching.py [--quick] (got {unknown})")
        return 2
    quick = "--quick" in argv
    crosscheck = run_crosscheck()  # exactness across all four backends
    cold = cold_single_shot(crosscheck)
    assert cold["warm_vs_scipy"] >= 1.0, cold
    if quick:
        points = run_replay(shapes=FIG3_SHAPES[:1], reps=2)
        online = run_online_replay(shapes=FIG3_SHAPES[:1], reps=2, n_events=30)
        print(render_replay_table(points))
        print(render_online_table(online))
        # smoke: identity (asserted in the runners) plus a sane sparse win
        # on the consume rounds and a warm replay win on the online stream
        # (noise headroom below the recorded figures)
        assert all(p["sparse_speedup"] > 1.2 for p in points), points
        assert all(p["warm_speedup"] > 1.0 for p in online), online
        assert all(p["warm_vs_sparse"] > 1.0 for p in online), online
    else:
        points = run_replay()
        online = run_online_replay()
        print(render_replay_table(points))
        print(render_online_table(online))
        RESULTS_DIR.mkdir(exist_ok=True)
        emit_replay(RESULTS_DIR, points, online, cold, REPLAY_REPS)
        _assert_replay_records(crosscheck, points, online)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
