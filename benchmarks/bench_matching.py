"""Matching backends: cross-check and fig3-shape round-replay timings.

Algorithm 2's inner loop is a min-cost maximum matching; this bench covers
the four backends of :mod:`repro.matching.mincost` two ways:

* **cross-check grid** -- every backend solves the same heuristic-shaped
  instances; cardinality and total cost must agree exactly (the exactness
  contract -- pairings may permute within equal-cost matchings);
* **fig3-shape round replay** -- the round-graph *sequence* a real
  Algorithm 2 solve produces on Figure-3-shaped instances is captured
  once (from the incremental engine under the dense reference backend),
  each backend's identity is asserted on every captured graph, and only
  then are the raw matchers timed over the whole sequence.  Passes are
  cache-cold: a fresh workspace (dense) or a fresh dual store (warm) per
  pass, min-of-reps reported.

The replay is where the sparse backend earns its cutoff: radius-1
locality makes the round graphs ~10% dense, so the CSR path skips the
``(n + m)^2`` big-M padding the dense reduction pays for.  The warm
solver's per-round Python sweep loses to scipy's C assignment kernel on
wall-clock despite doing less dual work -- recorded honestly below; its
value is the cross-round dual contract (see ``docs/performance.md``).

Run standalone for a quick smoke check (used by CI)::

    python benchmarks/bench_matching.py --quick
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # standalone: bootstrap repo + src onto the path
    _root = Path(__file__).resolve().parent.parent
    for entry in (str(_root), str(_root / "src")):
        if entry not in sys.path:
            sys.path.insert(0, entry)

import numpy as np
import pytest

from benchmarks.conftest import RESULTS_DIR, emit, emit_json
from repro.algorithms.heuristic import MatchingHeuristic
from repro.experiments.instances import InstanceSpec, build_instance
from repro.matching.hungarian import solve_assignment
from repro.matching.incremental import RoundState, warm_solver_for
from repro.matching.mincost import (
    BACKENDS,
    MatchingWorkspace,
    min_cost_max_matching,
    min_cost_max_matching_arrays,
)
from repro.util.tables import format_table


def _heuristic_shaped_edges(n_rows: int, n_cols: int, seed: int):
    rng = np.random.default_rng(seed)
    return {
        (r, c): float(rng.uniform(0.5, 6.0))
        for r in range(n_rows)
        for c in range(n_cols)
        if rng.uniform() < 0.3
    }


@pytest.mark.parametrize("backend", list(BACKENDS))
def bench_mincost_heuristic_shape(benchmark, backend):
    """10 cloudlets x 150 items at 30% edge density (one Algorithm 2 round)."""
    edges = _heuristic_shaped_edges(10, 150, seed=5)
    result = benchmark(min_cost_max_matching, 10, 150, edges, backend)
    assert len(result) == 10  # every cloudlet matched at this density


@pytest.mark.parametrize("size", [50, 150])
def bench_hungarian_dense(benchmark, size):
    """Dense square assignment with the from-scratch JV solver."""
    rng = np.random.default_rng(size)
    cost = rng.uniform(0, 100, size=(size, size))
    _, total = benchmark(solve_assignment, cost)
    assert total > 0


# -- cross-check grid --------------------------------------------------------------

#: (rows, cols, seed) instances for the backend cross-check.
CROSSCHECK_GRID = [(10, 100, 1), (10, 300, 2), (20, 200, 3)]

#: Timed calls per backend per instance; the minimum is recorded.
TIMING_REPS = 3


def _timed_solve(n_rows, n_cols, edges, backend):
    """Solve once per rep and return (result, best_seconds)."""
    best = float("inf")
    result = None
    for _ in range(TIMING_REPS):
        start = time.perf_counter()
        result = min_cost_max_matching(n_rows, n_cols, edges, backend=backend)
        best = min(best, time.perf_counter() - start)
    return result, best


def run_crosscheck():
    """Every backend on every grid instance; exact cardinality/cost agreement."""
    points = []
    for n_rows, n_cols, seed in CROSSCHECK_GRID:
        edges = _heuristic_shaped_edges(n_rows, n_cols, seed)
        point: dict[str, object] = {"instance": f"{n_rows}x{n_cols}", "seed": seed}
        reference = None
        for backend in BACKENDS:
            result, seconds = _timed_solve(n_rows, n_cols, edges, backend)
            summary = (len(result), round(sum(e.cost for e in result), 9))
            point[f"cardinality_{backend}"] = summary[0]
            point[f"cost_{backend}"] = summary[1]
            point[f"{backend}_seconds"] = seconds
            if reference is None:
                reference = summary
            else:
                assert summary == reference, (backend, summary, reference)
        points.append(point)
    return points


# -- fig3-shape round replay -------------------------------------------------------

#: Figure-3-shaped instances (radius-1 locality => ~10%-dense round graphs).
#: Labels name the fig3 x-axis point (network size |V|).
FIG3_SHAPES = [
    (
        "V=1000",
        InstanceSpec(
            seed=9202, family="waxman", num_nodes=1000, cloudlet_count=100,
            chain_length=16, radius=1, residual_scale=1.0, max_backups=50,
        ),
    ),
    (
        "V=1200",
        InstanceSpec(
            seed=9203, family="waxman", num_nodes=1200, cloudlet_count=120,
            chain_length=16, radius=1, residual_scale=1.0, max_backups=60,
        ),
    ),
    (
        "V=1500",
        InstanceSpec(
            seed=9204, family="waxman", num_nodes=1500, cloudlet_count=150,
            chain_length=16, radius=1, residual_scale=1.0, max_backups=70,
        ),
    ),
]

#: Timed passes per backend per instance in the replay; minimum reported.
REPLAY_REPS = 5

#: Backends timed in the replay.  ``own`` is exact but O((n+m)^3) dense
#: Python -- seconds per pass at replay scale -- so the cross-check grid
#: and the property tests cover it instead.
REPLAY_BACKENDS = ("scipy", "sparse", "warm")


def capture_round_graphs(problem):
    """The round-graph sequence of one Algorithm 2 solve, as copies.

    Wraps :meth:`RoundState.build_edges` for the duration of a single
    dense-backend solve (restored in ``finally``), snapshotting each
    round's ``(rows, cols, edge_rows, edge_cols, edge_costs)`` before the
    engine consumes it.  ``stop_at_expectation=False`` packs until no edge
    remains -- the resource-exhaustion regime whose round count Figure 3's
    scarce-capacity points hit.
    """
    captured = []
    original = RoundState.build_edges

    def recording(self):
        rows, cols, edge_rows, edge_cols, edge_costs = original(self)
        captured.append(
            (list(rows), cols.copy(), edge_rows.copy(), edge_cols.copy(),
             list(edge_costs))
        )
        return rows, cols, edge_rows, edge_cols, edge_costs

    RoundState.build_edges = recording
    try:
        MatchingHeuristic(backend="scipy", stop_at_expectation=False).solve(problem)
    finally:
        RoundState.build_edges = original
    return captured


def _replay_dense(sequence, backend):
    """One cache-cold pass: a fresh workspace, every captured round in order."""
    workspace = MatchingWorkspace()
    return [
        min_cost_max_matching_arrays(
            len(rows), len(cols), edge_rows, edge_cols, edge_costs,
            backend=backend, workspace=workspace,
        )
        for rows, cols, edge_rows, edge_cols, edge_costs in sequence
    ]


def _replay_warm(problem, sequence):
    """One cache-cold pass: a fresh dual store, duals carried across rounds."""
    solver = warm_solver_for(problem, problem.ledger())
    return [
        solver.solve_round(rows, cols, edge_rows, edge_cols, edge_costs)
        for rows, cols, edge_rows, edge_cols, edge_costs in sequence
    ]


def _matching_summary(matchings):
    """Per-round (cardinality, total cost) -- the exactness invariant."""
    out = []
    for matching in matchings:
        cost = sum(e[2] if isinstance(e, tuple) else e.cost for e in matching)
        out.append((len(matching), round(cost, 9)))
    return out


def run_replay(shapes=FIG3_SHAPES, reps=REPLAY_REPS):
    """Capture, identity-check, then time each backend over the sequence."""
    points = []
    for label, spec in shapes:
        problem = build_instance(spec)
        sequence = capture_round_graphs(problem)
        timed = [g for g in sequence if g[4]]  # a final empty graph times nothing
        n_rows, n_cols, n_edges = (
            len(timed[0][0]), len(timed[0][1]), len(timed[0][4])
        )

        # Identity before timing: every backend, every captured round graph.
        reference = _matching_summary(_replay_dense(timed, "scipy"))
        assert _matching_summary(_replay_dense(timed, "sparse")) == reference
        assert _matching_summary(_replay_warm(problem, timed)) == reference

        seconds: dict[str, float] = {}
        for backend in REPLAY_BACKENDS:
            best = float("inf")
            for _ in range(reps):
                start = time.perf_counter()
                if backend == "warm":
                    _replay_warm(problem, timed)
                else:
                    _replay_dense(timed, backend)
                best = min(best, time.perf_counter() - start)
            seconds[backend] = best

        points.append(
            {
                "instance": label,
                "seed": spec.seed,
                "rounds": len(timed),
                "round0_rows": n_rows,
                "round0_cols": n_cols,
                "round0_edges": n_edges,
                "round0_density": round(n_edges / (n_rows * n_cols), 4),
                "scipy_seconds": seconds["scipy"],
                "sparse_seconds": seconds["sparse"],
                "warm_seconds": seconds["warm"],
                "sparse_speedup": seconds["scipy"] / seconds["sparse"],
                "warm_speedup": seconds["scipy"] / seconds["warm"],
            }
        )
    return points


def render_replay_table(points):
    rows = [
        [
            p["instance"],
            p["rounds"],
            f"{p['round0_rows']}x{p['round0_cols']}",
            f"{p['round0_density']:.0%}",
            f"{p['scipy_seconds'] * 1e3:.2f}",
            f"{p['sparse_seconds'] * 1e3:.2f}",
            f"{p['warm_seconds'] * 1e3:.2f}",
            f"{p['sparse_speedup']:.2f}x",
            f"{p['warm_speedup']:.2f}x",
        ]
        for p in points
    ]
    return format_table(
        ["instance", "rounds", "round0", "density", "scipy ms", "sparse ms",
         "warm ms", "sparse", "warm"],
        rows,
        title="Fig3-shape round replay: per-backend wall-clock (min of reps)",
    )


def emit_replay(results_dir, points, reps):
    emit(results_dir, "matching_replay", render_replay_table(points))
    emit_json(
        results_dir,
        "BENCH_matching_backends",
        config={
            "workload": (
                "Algorithm 2 round-graph replay on Figure-3-shaped instances "
                "(waxman, radius-1 locality, stop_at_expectation=False)"
            ),
            "shapes": [
                {
                    "instance": label,
                    "seed": spec.seed,
                    "num_nodes": spec.num_nodes,
                    "cloudlet_count": spec.cloudlet_count,
                    "chain_length": spec.chain_length,
                    "radius": spec.radius,
                    "max_backups": spec.max_backups,
                }
                for label, spec in FIG3_SHAPES
            ],
            "reps_per_backend": reps,
            "timing": (
                "min-of-reps over cache-cold passes (fresh workspace / fresh "
                "dual store per pass) of the raw matchers over the captured "
                "round sequence; identity (cardinality + total cost per "
                "round graph) asserted across backends before any timing"
            ),
            "excluded": "own (exact but O((n+m)^3) dense Python; cross-check grid covers it)",
        },
        points=points,
        extra={
            "note": (
                f"measured on cpu_count={os.cpu_count()}; matchers are "
                "single-threaded, so speedup is backend-vs-backend on one "
                "core.  warm < 1x is expected: scipy's C assignment kernel "
                "beats the Python dual-reusing sweep on wall-clock; the "
                "warm backend exists for its cross-round dual contract."
            )
        },
    )


def bench_matching_report(benchmark, results_dir):
    """Cross-check table plus the fig3-shape replay record."""

    def run():
        return run_crosscheck(), run_replay()

    crosscheck, replay = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [p["instance"]]
        + [p[f"cardinality_{b}"] for b in BACKENDS]
        + [p[f"cost_{b}"] for b in BACKENDS]
        for p in crosscheck
    ]
    emit(
        results_dir,
        "matching_backends",
        format_table(
            ["instance"]
            + [f"card({b})" for b in BACKENDS]
            + [f"cost({b})" for b in BACKENDS],
            rows,
            title="Matching backends agree on cardinality and cost",
        ),
    )
    emit_json(
        results_dir,
        "BENCH_matching_crosscheck",
        config={
            "workload": "heuristic-shaped mincost matching, 30% edge density",
            "grid": [list(point) for point in CROSSCHECK_GRID],
            "backends": list(BACKENDS),
            "reps_per_backend": TIMING_REPS,
            "timing": "min-of-reps per backend per instance",
        },
        points=crosscheck,
    )
    emit_replay(results_dir, replay, REPLAY_REPS)

    # The sparse CSR path must clearly beat the dense reduction on the
    # fig3-shape rounds; the per-row floor leaves noise headroom under the
    # recorded >=1.5x headline.
    for point in replay:
        assert point["sparse_speedup"] > 1.3, point
    assert max(p["sparse_speedup"] for p in replay) >= 1.5, replay


def main(argv):
    unknown = [a for a in argv if a != "--quick"]
    if unknown:
        print(f"usage: bench_matching.py [--quick] (got {unknown})")
        return 2
    quick = "--quick" in argv
    run_crosscheck()  # exactness across all four backends (asserted inside)
    if quick:
        points = run_replay(shapes=FIG3_SHAPES[:1], reps=2)
        print(render_replay_table(points))
        # smoke: identity (asserted in run_replay) plus a sane sparse win
        # (noise headroom below the recorded >=1.5x)
        assert all(p["sparse_speedup"] > 1.2 for p in points), points
    else:
        points = run_replay()
        RESULTS_DIR.mkdir(exist_ok=True)
        emit_replay(RESULTS_DIR, points, REPLAY_REPS)
        for point in points:
            assert point["sparse_speedup"] > 1.3, point
        assert max(p["sparse_speedup"] for p in points) >= 1.5, points
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
