"""Extension bench: the fault-tolerant request stream under failure injection.

Beyond provisioning quality: serve a request stream while instances die
and cloudlets black out, with automatic re-augmentation repairing degraded
chains.  Reports the operator-facing fault metrics (availability, time
below SLO, repair success rate, MTTR) per named fault scenario, plus an
outage-severity sweep over the cloudlet MTBF.
"""

from __future__ import annotations

from benchmarks.conftest import emit, percentiles, trials_per_point
from repro.algorithms.heuristic import MatchingHeuristic
from repro.experiments.resilience import (
    FAULT_SCENARIOS,
    run_fault_scenario,
)
from repro.experiments.resilience import run_outage_sweep
from repro.util.rng import as_rng, spawn_rng
from repro.util.tables import format_table

NUM_REQUESTS = 8


def bench_fault_scenarios(benchmark, results_dir):
    streams = max(3, trials_per_point() // 2)

    def sweep():
        rows = []
        for scenario in sorted(FAULT_SCENARIOS):
            avail = below = success = mttr = degraded = violations = 0.0
            mttr_samples: list[float] = []
            for child in spawn_rng(as_rng(53), streams):
                report = run_fault_scenario(
                    scenario, MatchingHeuristic(), NUM_REQUESTS, rng=child
                )
                avail += report.mean_availability
                below += report.time_below_slo
                success += report.repair_success_rate
                mttr += report.mttr
                degraded += report.chains_degraded
                violations += report.invariant_violations
                mttr_samples.extend(report.mttr_samples)
            pct = percentiles(mttr_samples)
            rows.append(
                [
                    scenario,
                    round(avail / streams, 4),
                    round(below / streams, 3),
                    round(success / streams, 4),
                    round(mttr / streams, 4),
                    round(pct["p50"], 4),
                    round(pct["p90"], 4),
                    round(pct["p99"], 4),
                    round(degraded / streams, 2),
                    int(violations),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        results_dir,
        "resilience_scenarios",
        format_table(
            [
                "scenario",
                "availability",
                "below SLO",
                "repair ok",
                "MTTR",
                "MTTR p50",
                "MTTR p90",
                "MTTR p99",
                "degraded",
                "violations",
            ],
            rows,
            title=(
                f"Fault scenarios, {NUM_REQUESTS} requests/stream "
                f"({streams} streams/scenario, heuristic augmenter)"
            ),
        ),
    )


def bench_outage_sweep(benchmark, results_dir):
    streams = max(3, trials_per_point() // 2)

    def sweep():
        return run_outage_sweep(
            MatchingHeuristic(),
            mtbfs=[5.0, 10.0, 20.0],
            num_requests=NUM_REQUESTS,
            streams=streams,
            rng=59,
        )

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        results_dir,
        "resilience_outage_sweep",
        format_table(
            [
                "cloudlet MTBF",
                "availability",
                "below SLO",
                "repair ok",
                "MTTR",
                "degraded",
                "unrepairable",
            ],
            rows,
            title=(
                f"Outage-severity sweep, {NUM_REQUESTS} requests/stream "
                f"({streams} streams/point, heuristic augmenter)"
            ),
        ),
    )
