"""Ablation: the locality radius l (beyond the paper's fixed l = 1).

The paper fixes l = 1 in its experiments but formulates the problem for any
1 <= l <= |V| - 1; the unrestricted extreme is the prior-work setting (Lin
et al.) where backups go anywhere.  This bench sweeps l in {0, 1, 2, inf}
under the Section 7.1 defaults and reports the exact optimum's reliability
-- quantifying what the latency-motivated locality constraint costs.
"""

from __future__ import annotations

from benchmarks.conftest import trials_per_point, emit, emit_json
from repro.algorithms.ilp_exact import ILPAlgorithm
from repro.experiments.runner import run_point
from repro.experiments.settings import DEFAULT_SETTINGS
from repro.util.tables import format_table

RADII: tuple[tuple[str, int], ...] = (
    ("0", 0),
    ("1 (paper)", 1),
    ("2", 2),
    ("unrestricted", 99),
)


def bench_lhop_radius(benchmark, results_dir):
    trials = trials_per_point()

    def sweep():
        rows = []
        for label, radius in RADII:
            settings = DEFAULT_SETTINGS.vary(radius=radius)
            stats = run_point(
                settings, [ILPAlgorithm()], trials=trials, rng=17
            )["ILP"]
            rows.append(
                [label, stats.reliability, stats.expectation_met_rate, stats.mean_backups]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        results_dir,
        "ablation_lhop",
        format_table(
            ["l", "reliability(ILP)", "expectation met", "mean backups"],
            rows,
            title=f"Ablation: locality radius l ({trials} trials/point)",
        ),
    )

    emit_json(
        results_dir,
        "BENCH_ablation_lhop",
        config={
            "workload": "locality radius ablation, exact ILP optimum",
            "radii": [radius for _, radius in RADII],
            "trials_per_point": trials,
            "seed": 17,
        },
        points=[
            {
                "radius": label,
                "reliability_ilp": reliability,
                "expectation_met_rate": met,
                "mean_backups": backups,
            }
            for label, reliability, met, backups in rows
        ],
    )

    reliabilities = [row[1] for row in rows]
    # looser locality can only help (weak monotonicity up to sampling noise)
    assert reliabilities[-1] >= reliabilities[0] - 0.02
