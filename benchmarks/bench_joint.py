"""Extension bench: the price of sequential admission.

Compares sequential per-request augmentation (the paper's operating model,
applied request by request on a shared ledger) against the clairvoyant
joint ILP of :mod:`repro.solvers.multi` that sees the whole batch at once.
The met-SLO gap between the two is the capacity an operator loses to
arrival order -- a bound no sequential policy can beat.
"""

from __future__ import annotations

from benchmarks.conftest import emit, emit_json, trials_per_point
from repro.algorithms.baselines import GreedyGain
from repro.algorithms.heuristic import MatchingHeuristic
from repro.experiments.batch import run_joint_comparison
from repro.experiments.settings import DEFAULT_SETTINGS
from repro.util.rng import as_rng, spawn_rng
from repro.util.tables import format_table

BATCH_SIZE = 8


def bench_sequential_vs_joint(benchmark, results_dir):
    batches = max(3, trials_per_point() // 3)
    algorithms = [MatchingHeuristic(), GreedyGain()]

    def sweep():
        rows = []
        for algorithm in algorithms:
            seq_met = joint_met = seq_rel = joint_rel = 0.0
            for child in spawn_rng(as_rng(61), batches):
                comparison = run_joint_comparison(
                    DEFAULT_SETTINGS, algorithm, BATCH_SIZE, rng=child
                )
                count = max(1, comparison.num_requests)
                seq_met += comparison.sequential_met / count
                joint_met += comparison.joint_met / count
                seq_rel += comparison.sequential_mean_reliability
                joint_rel += comparison.joint_mean_reliability
            rows.append(
                [
                    algorithm.name,
                    seq_met / batches,
                    joint_met / batches,
                    seq_rel / batches,
                    joint_rel / batches,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        results_dir,
        "sequential_vs_joint",
        format_table(
            [
                "sequential augmenter",
                "SLO met (seq)",
                "SLO met (joint)",
                "mean rel (seq)",
                "mean rel (joint)",
            ],
            rows,
            title=(
                f"Price of sequential admission (batches of {BATCH_SIZE}, "
                f"{batches} batches/algorithm; joint = clairvoyant ILP)"
            ),
        ),
    )

    emit_json(
        results_dir,
        "BENCH_sequential_vs_joint",
        config={
            "workload": "sequential admission vs clairvoyant joint ILP",
            "batch_size": BATCH_SIZE,
            "batches_per_algorithm": batches,
            "seed": 61,
        },
        points=[
            {
                "sequential_augmenter": name,
                "slo_met_sequential": seq_met,
                "slo_met_joint": joint_met,
                "mean_reliability_sequential": seq_rel,
                "mean_reliability_joint": joint_rel,
            }
            for name, seq_met, joint_met, seq_rel, joint_rel in rows
        ],
    )

    for row in rows:
        assert row[2] >= row[1] - 1e-9  # the joint bound must dominate
