"""Ablation: the paper's algorithms vs simple greedy baselines.

The paper compares only ILP / Randomized / Heuristic against each other;
this bench adds a highest-marginal-gain greedy (two bin policies) and the
no-backup floor, positioning the paper's heuristic against the obvious
alternative an engineer would try first.
"""

from __future__ import annotations

from benchmarks.conftest import trials_per_point, emit, emit_json
from repro.algorithms.baselines import GreedyGain, NoAugmentation
from repro.algorithms.heuristic import MatchingHeuristic
from repro.algorithms.ilp_exact import ILPAlgorithm
from repro.algorithms.repair import RepairedRandomizedRounding
from repro.experiments.runner import run_point
from repro.experiments.settings import DEFAULT_SETTINGS
from repro.util.tables import format_table


def bench_baseline_comparison(benchmark, results_dir):
    trials = trials_per_point()
    algorithms = [
        ILPAlgorithm(),
        MatchingHeuristic(),
        RepairedRandomizedRounding(),
        GreedyGain("max_residual"),
        GreedyGain("best_fit"),
        NoAugmentation(),
    ]

    def sweep():
        return run_point(
            DEFAULT_SETTINGS.vary(residual_fraction=1 / 8),
            algorithms,
            trials=trials,
            rng=29,
        )

    stats = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [name, s.reliability, s.runtime * 1e3, s.mean_backups, s.expectation_met_rate]
        for name, s in stats.items()
    ]
    emit(
        results_dir,
        "baselines",
        format_table(
            ["algorithm", "reliability", "time (ms)", "backups", "met rate"],
            rows,
            title=(
                "Baselines at 1/8 residual capacity "
                f"({trials} trials; greedy vs the paper's algorithms)"
            ),
        ),
    )
    emit_json(
        results_dir,
        "BENCH_baselines",
        config={
            "workload": "default comparison at 1/8 residual capacity",
            "residual_fraction": 1 / 8,
            "trials_per_point": trials,
            "rng": 29,
            "timing": "mean per-request solve time over trials",
        },
        points=[
            {
                "algorithm": name,
                "reliability": s.reliability,
                "solve_seconds": s.runtime,
                "mean_backups": s.mean_backups,
                "expectation_met_rate": s.expectation_met_rate,
            }
            for name, s in stats.items()
        ],
    )

    assert stats["ILP"].reliability >= stats["Greedy[max_residual]"].reliability - 1e-9
    assert stats["NoBackup"].reliability < stats["Heuristic"].reliability
