"""Extension bench: analytical guarantees vs measured behaviour.

The paper's conclusion observes that the algorithms' "empirical results are
superior to their analytical counterparts".  This bench makes the claim a
table: for several default-settings instances it evaluates Theorem 5.2's
quantities (`repro.analysis.theory`) next to the randomized algorithm's
*measured* reliability ratio and peak usage over repeated roundings.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import trials_per_point, emit, emit_json
from repro.algorithms.ilp_exact import ILPAlgorithm
from repro.algorithms.randomized import RandomizedRounding
from repro.analysis.theory import theorem52_bounds
from repro.experiments.settings import DEFAULT_SETTINGS
from repro.experiments.workload import make_trial
from repro.util.tables import format_table

ROUNDING_DRAWS = 20


def bench_theory_vs_practice(benchmark, results_dir):
    instances = max(3, trials_per_point() // 3)

    def sweep():
        rows = []
        for seed in range(instances):
            instance = make_trial(DEFAULT_SETTINGS, rng=1000 + seed)
            problem = instance.problem
            if problem.num_items == 0 or problem.baseline_meets_expectation:
                continue
            optimum = ILPAlgorithm(stop_at_expectation=False).solve(problem)
            bounds = theorem52_bounds(
                problem, optimal_reliability=optimum.reliability
            )
            ratios, peaks = [], []
            for draw in range(ROUNDING_DRAWS):
                result = RandomizedRounding(stop_at_expectation=False).solve(
                    problem, rng=draw
                )
                ratios.append(result.reliability / optimum.reliability)
                peaks.append(result.usage_max)
            rows.append(
                [
                    f"inst-{seed}",
                    bounds.num_items,
                    bounds.capacity_premise_met,
                    bounds.approx_ratio,
                    float(np.mean(ratios)),
                    float(np.max(peaks)),
                    bounds.violation_factor,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        results_dir,
        "theory_vs_practice",
        format_table(
            [
                "instance",
                "N",
                "premise met",
                "analytic ratio",
                "measured rel/opt",
                "measured peak use",
                "promised cap",
            ],
            rows,
            title=(
                "Theorem 5.2's analytical counterparts vs measurement "
                f"({ROUNDING_DRAWS} roundings/instance)"
            ),
        ),
    )

    emit_json(
        results_dir,
        "BENCH_theory_vs_practice",
        config={
            "workload": "Theorem 5.2 analytical bounds vs measured roundings",
            "instances": instances,
            "rounding_draws_per_instance": ROUNDING_DRAWS,
            "seed_base": 1000,
        },
        points=[
            {
                "instance": instance,
                "num_items": num_items,
                "capacity_premise_met": premise,
                "analytic_approx_ratio": analytic,
                "measured_reliability_ratio": measured,
                "measured_peak_usage": peak,
                "promised_violation_factor": promised,
            }
            for instance, num_items, premise, analytic, measured, peak, promised in rows
        ],
    )

    # the paper's observation: measured ratios far better than analytic caps
    for row in rows:
        assert row[4] > 0.5          # measured reliability near optimal
        assert row[5] < 3.0          # peak usage comfortably bounded
