"""Figure 1: performance vs SFC length (2 to 20).

Regenerates all three panels:

* (a) achieved SFC reliability of ILP / Randomized / Heuristic;
* (b) capacity usage ratio (avg/min/max) of the randomized algorithm;
* (c) running time of the three algorithms.

Paper claims to compare against (Section 7.2): Randomized >= 97.82% and
Heuristic >= 96.03% of the ILP's reliability; Randomized sometimes exceeds
the ILP via capacity violations; time(ILP) >> time(Randomized) >
time(Heuristic), with the ILP gap widening as the chain grows.
"""

from __future__ import annotations

from benchmarks.conftest import emit, emit_json, full_grid, trials_per_point
from repro.experiments.figures import FIG1_SFC_LENGTHS, run_figure1
from repro.experiments.reporting import render_figure
from repro.experiments.serialization import series_records
from repro.experiments.settings import DEFAULT_SETTINGS
from repro.parallel import resolve_jobs
from repro.util.timing import time_call

THIN_GRID = (2, 6, 10, 14, 20)


def bench_figure1(benchmark, results_dir):
    lengths = FIG1_SFC_LENGTHS if full_grid() else THIN_GRID
    trials = trials_per_point()
    timing: dict[str, float] = {}

    def sweep():
        series, timing["seconds"] = time_call(
            run_figure1,
            DEFAULT_SETTINGS,
            sfc_lengths=lengths,
            trials=trials,
            rng=1,
        )
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        results_dir,
        "fig1_sfc_length",
        render_figure(series)
        + f"\n\n({trials} trials/point; paper used 1000. "
        "Set REPRO_TRIALS / REPRO_BENCH_FULL=1 for the full protocol.)",
    )
    emit_json(
        results_dir,
        "fig1_sfc_length",
        config={
            "grid": list(lengths),
            "trials": trials,
            "seed": 1,
            "reps": 1,
            "jobs": resolve_jobs(None),
        },
        points=series_records(series),
        extra={"sweep_seconds": timing["seconds"]},
    )

    # sanity of the paper's headline claims on the generated data
    for i in range(len(series.x_values)):
        point = series.points[i]
        ilp = point["ILP"].reliability
        assert point["Heuristic"].reliability <= ilp + 0.05
        assert point["Heuristic"].reliability >= 0.85 * ilp
    # runtime ordering on the largest instance
    last = series.points[-1]
    assert last["ILP"].runtime > last["Heuristic"].runtime
