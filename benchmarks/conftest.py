"""Shared benchmark configuration.

The figure benches regenerate the paper's plots as plain-text tables.  Each
bench runs its sweep once inside pytest-benchmark (``rounds=1`` -- a sweep
is minutes of work at paper scale) and prints the same rows the paper's
figure panels plot.  Tables are also written to ``benchmarks/results/`` so
they survive output capturing.

Scale knobs (environment variables):

* ``REPRO_TRIALS``      -- trials per data point (default here: 10;
  the paper uses 1000);
* ``REPRO_BENCH_FULL``  -- set to 1 to run the paper's full sweep grids
  (default: a thinned grid so the suite finishes in CI time).
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from typing import Mapping

import pytest

from repro.experiments.instances import InstanceSpec, build_instance, differential_suite

# Every bench that reports a latency-style distribution uses the same
# percentile convention (linear interpolation, p50/p90/p99 by default).
# Re-exported here so benches import it from one place.
from repro.util.stats import DEFAULT_PERCENTILES, percentiles  # noqa: F401

RESULTS_DIR = Path(__file__).parent / "results"

#: Default trials per point for benches (paper: 1000).
DEFAULT_TRIALS = 10


def trials_per_point() -> int:
    """Trials per data point, honouring ``REPRO_TRIALS``."""
    return int(os.environ.get("REPRO_TRIALS", str(DEFAULT_TRIALS)))


def full_grid() -> bool:
    """Whether to run the paper's full sweep grids."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a report table and persist it under benchmarks/results/."""
    print(f"\n{text}\n")
    (results_dir / f"{name}.txt").write_text(text + "\n")


def machine_metadata() -> dict[str, object]:
    """The machine facts a recorded timing is meaningless without."""
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def emit_json(
    results_dir: Path,
    name: str,
    config: Mapping[str, object],
    points: list[dict[str, object]],
    extra: Mapping[str, object] | None = None,
) -> Path:
    """Persist a machine-readable benchmark record under benchmarks/results/.

    Schema (``repro-bench/1``): ``config`` holds the knobs the run used
    (grids, trials, seed, reps), ``points`` one record per measured data
    point.  Timing fields follow the min-of-reps convention -- a point's
    ``seconds`` is the minimum over its repetitions (robust to scheduler
    noise), with the raw repetitions alongside when more than one was
    taken.  ``machine`` records what the numbers were measured on.
    """
    document: dict[str, object] = {
        "schema": "repro-bench/1",
        "benchmark": name,
        "machine": machine_metadata(),
        "config": dict(config),
        "points": points,
    }
    if extra:
        document.update(extra)
    path = results_dir / f"{name}.json"
    path.write_text(json.dumps(document, indent=2, default=str) + "\n")
    print(f"wrote {path}")
    return path


@pytest.fixture(scope="session")
def instance_factory():
    """The shared seeded-problem factory (same one the tests use).

    Returns :func:`repro.experiments.instances.build_instance`; pair with
    :class:`InstanceSpec` or :func:`differential_suite` so tests and
    benchmarks exercise bit-identical instances.
    """
    return build_instance


@pytest.fixture(scope="session")
def differential_specs() -> list[InstanceSpec]:
    """The canonical 50-spec differential stream (same as tests/)."""
    return list(differential_suite(50))
