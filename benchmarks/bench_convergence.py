"""Extension bench: how many trials per point does a stable mean need?

The paper uses 1,000 trials per data point; this bench measures the actual
trial-count/confidence trade-off at the default settings, reporting the
running mean reliability and 95% half-width at log-spaced checkpoints --
the empirical justification for this repository's smaller bench defaults.
"""

from __future__ import annotations

from benchmarks.conftest import emit, emit_json, trials_per_point
from repro.algorithms.heuristic import MatchingHeuristic
from repro.experiments.convergence import convergence_table, trials_for_half_width
from repro.experiments.settings import DEFAULT_SETTINGS
from repro.util.tables import format_table


def bench_trial_convergence(benchmark, results_dir):
    top = max(40, trials_per_point() * 4)
    checkpoints = sorted({5, 10, top // 2, top})

    def sweep():
        return convergence_table(
            DEFAULT_SETTINGS, MatchingHeuristic(), checkpoints=checkpoints, rng=71
        )

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [p.trials, p.mean_reliability, p.std_error, p.half_width_95] for p in table
    ]
    needed = trials_for_half_width(table, 0.01)
    emit(
        results_dir,
        "trial_convergence",
        format_table(
            ["trials", "mean reliability", "std error", "95% half-width"],
            rows,
            title="Trial-count convergence (Heuristic, default settings)",
        )
        + f"\n\ntrials needed for +/-0.01 at 95%: {needed or f'>{checkpoints[-1]}'}",
    )

    emit_json(
        results_dir,
        "BENCH_trial_convergence",
        config={
            "workload": "running-mean convergence, Heuristic at default settings",
            "checkpoints": checkpoints,
            "seed": 71,
        },
        points=[
            {
                "trials": p.trials,
                "mean_reliability": p.mean_reliability,
                "std_error": p.std_error,
                "half_width_95": p.half_width_95,
            }
            for p in table
        ],
        extra={"trials_needed_for_001": needed},
    )

    half_widths = [p.half_width_95 for p in table]
    assert half_widths[-1] <= half_widths[0]  # more trials, tighter interval
