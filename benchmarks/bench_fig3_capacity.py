"""Figure 3: performance vs residual computing capacity (1/16 to 1).

Regenerates panels (a) reliability, (b) randomized usage, (c) running time
while the residual capacity fraction of every cloudlet sweeps over
1/16, 1/8, 1/4, 1/2, 1.

Paper claims (Section 7.2): with >= 50% residual capacity all three
algorithms achieve near-optimal reliability (98.30 / 97.12 / 96.42% at
50%); at 1/16 residual capacity reliability collapses to roughly
66 / 63 / 60%; running times grow with residual capacity (more secondaries
to place).
"""

from __future__ import annotations

from benchmarks.conftest import emit, emit_json, trials_per_point
from repro.experiments.figures import FIG3_RESIDUAL_FRACTIONS, run_figure3
from repro.experiments.reporting import render_figure
from repro.experiments.serialization import series_records
from repro.experiments.settings import DEFAULT_SETTINGS
from repro.parallel import resolve_jobs
from repro.util.timing import time_call


def bench_figure3(benchmark, results_dir):
    trials = trials_per_point()
    timing: dict[str, float] = {}

    def sweep():
        series, timing["seconds"] = time_call(
            run_figure3,
            DEFAULT_SETTINGS,
            fractions=FIG3_RESIDUAL_FRACTIONS,
            trials=trials,
            rng=3,
        )
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        results_dir,
        "fig3_capacity",
        render_figure(series)
        + f"\n\n({trials} trials/point; paper used 1000.)",
    )
    emit_json(
        results_dir,
        "fig3_capacity",
        config={
            "grid": list(FIG3_RESIDUAL_FRACTIONS),
            "trials": trials,
            "seed": 3,
            "reps": 1,
            "jobs": resolve_jobs(None),
        },
        points=series_records(series),
        extra={"sweep_seconds": timing["seconds"]},
    )

    # reliability rises with residual capacity for every algorithm
    for name in series.algorithms():
        rels = series.reliability_series(name)
        assert rels[-1] > rels[0] - 1e-9, (name, rels)
        # scarcity collapse: 1/16 residual is far below full capacity
        assert rels[0] < rels[-1] - 0.05, (name, rels)
