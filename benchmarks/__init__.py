"""Benchmark suite regenerating every figure of the paper's evaluation."""
